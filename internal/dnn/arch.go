package dnn

import (
	"fmt"

	"repro/internal/tensor"
)

// ArchConfig parameterizes the architecture builders. The paper trains
// full-width VGG-16 on GPU; the builders accept a width divisor so the
// same 16-layer topology trains in reasonable time on a single CPU core
// (see DESIGN.md substitutions).
type ArchConfig struct {
	// InC, InH, InW describe the input image.
	InC, InH, InW int
	// Classes is the number of output classes.
	Classes int
	// WidthDiv divides every VGG channel count (1 = paper widths).
	WidthDiv int
	// FCWidth is the width of the two hidden fully connected layers
	// (paper: 4096; scaled builds use far less).
	FCWidth int
	// BatchNorm inserts a BatchNorm after every conv/dense hidden layer.
	BatchNorm bool
	// Pool selects the pooling operator (AvgPool is SNN-friendly).
	Pool PoolKind
	// Dropout, when positive, adds dropout with this probability after
	// each hidden fully connected block (the classic VGG regularizer;
	// it vanishes at inference and is transparent to conversion).
	Dropout float64
	// DropoutRNG drives dropout masks (required when Dropout > 0).
	DropoutRNG *tensor.RNG
}

// vgg16Channels is the canonical VGG-16 convolutional configuration;
// "M" entries are pooling stages.
var vgg16Channels = []interface{}{
	64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M", 512, 512, 512, "M",
}

// vgg9Channels is a lighter configuration used by fast tests.
var vgg9Channels = []interface{}{
	64, "M", 128, "M", 256, 256, "M", 512, "M",
}

// BuildVGG16 constructs the paper's VGG-16 topology (13 conv + 3 FC
// weight layers, 5 pools) with block-style layer names (Conv2-1, …)
// matching Fig. 5 of the paper.
func BuildVGG16(cfg ArchConfig, rng *tensor.RNG) *Network {
	return buildVGG("vgg16", vgg16Channels, cfg, rng)
}

// BuildVGG9 constructs a 9-weight-layer VGG variant for fast tests.
func BuildVGG9(cfg ArchConfig, rng *tensor.RNG) *Network {
	return buildVGG("vgg9", vgg9Channels, cfg, rng)
}

func buildVGG(name string, channels []interface{}, cfg ArchConfig, rng *tensor.RNG) *Network {
	if cfg.WidthDiv <= 0 {
		cfg.WidthDiv = 1
	}
	if cfg.FCWidth <= 0 {
		cfg.FCWidth = 4096 / max(cfg.WidthDiv, 1)
	}
	n := NewNetwork(name, cfg.InC, cfg.InH, cfg.InW)
	c, h, w := cfg.InC, cfg.InH, cfg.InW
	block, idx := 1, 1
	for _, item := range channels {
		switch v := item.(type) {
		case int:
			outC := v / cfg.WidthDiv
			if outC < 2 {
				outC = 2
			}
			lname := fmt.Sprintf("Conv%d-%d", block, idx)
			g := tensor.ConvGeom{InC: c, InH: h, InW: w, KH: 3, KW: 3, Stride: 1, Pad: 1}
			n.Add(NewConv2D(lname, outC, g, rng))
			if cfg.BatchNorm {
				n.Add(NewBatchNorm(lname+".bn", outC, true))
			}
			n.Add(NewReLU(lname + ".relu"))
			c = outC
			idx++
		case string:
			n.Add(NewPool2D(fmt.Sprintf("Pool%d", block), cfg.Pool, c, h, w, 2))
			h, w = h/2, w/2
			block++
			idx = 1
		default:
			panic(fmt.Sprintf("dnn: bad channel spec entry %v", item))
		}
	}
	n.Add(NewFlatten("Flatten"))
	d := c * h * w
	// After the last pool, block has advanced past the conv stages; the
	// canonical VGG FC names continue the numbering (FC6, FC7, FC8).
	fcIdx := block
	for i := 0; i < 2; i++ {
		lname := fmt.Sprintf("FC%d", fcIdx+i)
		n.Add(NewDense(lname, d, cfg.FCWidth, rng))
		if cfg.BatchNorm {
			n.Add(NewBatchNorm(lname+".bn", cfg.FCWidth, false))
		}
		n.Add(NewReLU(lname + ".relu"))
		if cfg.Dropout > 0 {
			dr := cfg.DropoutRNG
			if dr == nil {
				dr = rng
			}
			n.Add(NewDropout(lname+".drop", cfg.Dropout, dr))
		}
		d = cfg.FCWidth
	}
	n.Add(NewDense(fmt.Sprintf("FC%d", fcIdx+2), d, cfg.Classes, rng))
	return n
}

// BuildLeNet constructs a small LeNet-style CNN (2 conv + 2 FC weight
// layers) used for the MNIST-like experiments.
func BuildLeNet(cfg ArchConfig, rng *tensor.RNG) *Network {
	if cfg.FCWidth <= 0 {
		cfg.FCWidth = 128
	}
	n := NewNetwork("lenet", cfg.InC, cfg.InH, cfg.InW)
	g1 := tensor.ConvGeom{InC: cfg.InC, InH: cfg.InH, InW: cfg.InW, KH: 3, KW: 3, Stride: 1, Pad: 1}
	c1 := 8
	n.Add(NewConv2D("Conv1", c1, g1, rng))
	if cfg.BatchNorm {
		n.Add(NewBatchNorm("Conv1.bn", c1, true))
	}
	n.Add(NewReLU("Conv1.relu"))
	n.Add(NewPool2D("Pool1", cfg.Pool, c1, cfg.InH, cfg.InW, 2))
	h, w := cfg.InH/2, cfg.InW/2

	g2 := tensor.ConvGeom{InC: c1, InH: h, InW: w, KH: 3, KW: 3, Stride: 1, Pad: 1}
	c2 := 16
	n.Add(NewConv2D("Conv2", c2, g2, rng))
	if cfg.BatchNorm {
		n.Add(NewBatchNorm("Conv2.bn", c2, true))
	}
	n.Add(NewReLU("Conv2.relu"))
	n.Add(NewPool2D("Pool2", cfg.Pool, c2, h, w, 2))
	h, w = h/2, w/2

	n.Add(NewFlatten("Flatten"))
	n.Add(NewDense("FC3", c2*h*w, cfg.FCWidth, rng))
	n.Add(NewReLU("FC3.relu"))
	n.Add(NewDense("FC4", cfg.FCWidth, cfg.Classes, rng))
	return n
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
