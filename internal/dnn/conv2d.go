package dnn

import (
	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over [N, C, H, W] inputs implemented by
// im2col lowering. Weights have shape [OutC, InC, KH, KW].
type Conv2D struct {
	name   string
	Geom   tensor.ConvGeom
	OutC   int
	Weight *Param
	Bias   *Param

	// caches from the last training forward pass
	lastCols []*tensor.Tensor // per-sample im2col matrices
	colBuf   *tensor.Tensor   // inference-path scratch
}

// NewConv2D constructs a convolution layer with He-normal weights.
func NewConv2D(name string, outC int, g tensor.ConvGeom, rng *tensor.RNG) *Conv2D {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	w := tensor.New(outC, g.InC, g.KH, g.KW)
	rng.HeInit(w, g.InC*g.KH*g.KW)
	return &Conv2D{
		name:   name,
		Geom:   g,
		OutC:   outC,
		Weight: newParam(name+".W", w),
		Bias:   newParam(name+".b", tensor.New(outC)),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	return []int{c.OutC, c.Geom.OutH(), c.Geom.OutW()}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := c.Geom
	checkBatchShape(c.name, x, g.InC, g.InH, g.InW)
	n := x.Shape[0]
	oh, ow := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	sampleIn := g.InC * g.InH * g.InW
	sampleOut := c.OutC * oh * ow

	out := tensor.New(n, c.OutC, oh, ow)
	w2 := c.Weight.W.Reshape(c.OutC, rows)
	if train {
		c.lastCols = make([]*tensor.Tensor, n)
	} else if c.colBuf == nil || c.colBuf.Shape[0] != rows || c.colBuf.Shape[1] != oh*ow {
		c.colBuf = tensor.New(rows, oh*ow)
	}
	prod := tensor.New(c.OutC, oh*ow)
	for i := 0; i < n; i++ {
		in := tensor.FromSlice(x.Data[i*sampleIn:(i+1)*sampleIn], g.InC, g.InH, g.InW)
		var cols *tensor.Tensor
		if train {
			cols = tensor.Im2Col(in, g, nil)
			c.lastCols[i] = cols
		} else {
			cols = tensor.Im2Col(in, g, c.colBuf)
		}
		tensor.MatMulInto(w2, cols, prod)
		dst := out.Data[i*sampleOut : (i+1)*sampleOut]
		copy(dst, prod.Data)
		for oc := 0; oc < c.OutC; oc++ {
			b := c.Bias.W.Data[oc]
			row := dst[oc*oh*ow : (oc+1)*oh*ow]
			for j := range row {
				row[j] += b
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.lastCols == nil {
		panic("dnn: Conv2D.Backward before Forward(train=true)")
	}
	g := c.Geom
	n := grad.Shape[0]
	oh, ow := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	sampleIn := g.InC * g.InH * g.InW
	sampleOut := c.OutC * oh * ow

	dx := tensor.New(n, g.InC, g.InH, g.InW)
	w2 := c.Weight.W.Reshape(c.OutC, rows)
	w2t := tensor.Transpose2D(w2)
	dwAcc := c.Weight.Grad.Reshape(c.OutC, rows)
	dcols := tensor.New(rows, oh*ow)
	dwPart := tensor.New(c.OutC, rows)
	for i := 0; i < n; i++ {
		gOut := tensor.FromSlice(grad.Data[i*sampleOut:(i+1)*sampleOut], c.OutC, oh*ow)
		// bias grad: sum over spatial positions
		for oc := 0; oc < c.OutC; oc++ {
			s := 0.0
			row := gOut.Data[oc*oh*ow : (oc+1)*oh*ow]
			for _, v := range row {
				s += v
			}
			c.Bias.Grad.Data[oc] += s
		}
		// dW += gOut × colsᵀ
		colsT := tensor.Transpose2D(c.lastCols[i])
		tensor.MatMulInto(gOut, colsT, dwPart)
		tensor.AddInPlace(dwAcc, dwPart)
		// dx via col2im(Wᵀ × gOut)
		tensor.MatMulInto(w2t, gOut, dcols)
		dxi := tensor.FromSlice(dx.Data[i*sampleIn:(i+1)*sampleIn], g.InC, g.InH, g.InW)
		tensor.Col2Im(dcols, g, dxi)
	}
	return dx
}
