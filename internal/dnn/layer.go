// Package dnn implements the trainable deep neural network substrate the
// T2FSNN paper converts from: convolution, pooling, dense, batch-norm and
// ReLU layers with full backpropagation, SGD/momentum and Adam optimizers,
// a sequential network container with gob serialization, and builders for
// the LeNet- and VGG-16-style architectures used in the experiments.
//
// All layer tensors carry a leading batch dimension: feature maps are
// [N, C, H, W] and dense activations are [N, D].
package dnn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is a trainable parameter with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

// newParam allocates a parameter and a zeroed gradient of the same shape.
func newParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, Grad: tensor.New(w.Shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one differentiable stage of a network. Forward caches whatever
// Backward needs, so a Layer instance must not be shared across concurrent
// forward passes.
type Layer interface {
	// Name identifies the layer for serialization, conversion, and the
	// per-layer reporting in the paper's figures (e.g. "Conv2-1").
	Name() string
	// Forward computes the layer output for a batch. train selects
	// training behaviour (batch statistics, caching for backward).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward receives dL/d(output) and returns dL/d(input),
	// accumulating parameter gradients along the way. It must be called
	// after a Forward with train=true.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameters (possibly empty).
	Params() []*Param
	// OutShape maps an input sample shape (without batch dimension) to
	// the output sample shape.
	OutShape(in []int) []int
}

// checkBatchShape panics with a descriptive message if x does not have
// the expected per-sample shape (ignoring the batch dimension).
func checkBatchShape(layer string, x *tensor.Tensor, sample ...int) {
	if x.Rank() != len(sample)+1 {
		panic(fmt.Sprintf("dnn: %s expected rank %d input, got %v", layer, len(sample)+1, x.Shape))
	}
	for i, d := range sample {
		if x.Shape[i+1] != d {
			panic(fmt.Sprintf("dnn: %s expected sample shape %v, got %v", layer, sample, x.Shape))
		}
	}
}
