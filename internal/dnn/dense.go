package dnn

import (
	"repro/internal/tensor"
)

// Dense is a fully connected layer: y = x·W + b with x of shape [N, In],
// W of shape [In, Out] and b of shape [Out].
type Dense struct {
	name    string
	In, Out int
	Weight  *Param
	Bias    *Param

	// cached input from the last training forward pass
	lastX *tensor.Tensor
}

// NewDense constructs a dense layer with He-normal weights drawn from rng.
func NewDense(name string, in, out int, rng *tensor.RNG) *Dense {
	w := tensor.New(in, out)
	rng.HeInit(w, in)
	return &Dense{
		name:   name,
		In:     in,
		Out:    out,
		Weight: newParam(name+".W", w),
		Bias:   newParam(name+".b", tensor.New(out)),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) []int { return []int{d.Out} }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatchShape(d.name, x, d.In)
	if train {
		d.lastX = x
	}
	n := x.Shape[0]
	out := tensor.MatMul(x, d.Weight.W) // [N, Out]
	for i := 0; i < n; i++ {
		row := out.Data[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += d.Bias.W.Data[j]
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := d.lastX
	if x == nil {
		panic("dnn: Dense.Backward before Forward(train=true)")
	}
	// dW += xᵀ·grad ; db += column sums ; dx = grad·Wᵀ
	xt := tensor.Transpose2D(x)
	dw := tensor.MatMul(xt, grad)
	tensor.AddInPlace(d.Weight.Grad, dw)
	n := grad.Shape[0]
	for i := 0; i < n; i++ {
		row := grad.Data[i*d.Out : (i+1)*d.Out]
		for j, g := range row {
			d.Bias.Grad.Data[j] += g
		}
	}
	wt := tensor.Transpose2D(d.Weight.W)
	return tensor.MatMul(grad, wt)
}
