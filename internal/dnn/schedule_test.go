package dnn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestConstantLR(t *testing.T) {
	if (ConstantLR{}).Multiplier(0) != 1 || (ConstantLR{}).Multiplier(99) != 1 {
		t.Fatal("constant schedule must be 1")
	}
}

func TestStepLR(t *testing.T) {
	s := StepLR{StepSize: 2, Gamma: 0.1}
	for epoch, want := range []float64{1, 1, 0.1, 0.1, 0.01} {
		if got := s.Multiplier(epoch); math.Abs(got-want) > 1e-12 {
			t.Fatalf("epoch %d: %v, want %v", epoch, got, want)
		}
	}
	if (StepLR{}).Multiplier(5) != 1 {
		t.Fatal("zero step size should be constant")
	}
}

func TestCosineLR(t *testing.T) {
	c := CosineLR{Epochs: 11, MinFactor: 0.1}
	if got := c.Multiplier(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("cosine start = %v, want 1", got)
	}
	if got := c.Multiplier(10); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("cosine end = %v, want 0.1", got)
	}
	if got := c.Multiplier(20); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("cosine past end = %v, want clamped 0.1", got)
	}
	// monotone decreasing
	prev := 2.0
	for e := 0; e < 11; e++ {
		v := c.Multiplier(e)
		if v > prev {
			t.Fatalf("cosine not decreasing at epoch %d", e)
		}
		prev = v
	}
}

func TestSetLRScaleDoesNotCompound(t *testing.T) {
	s := NewSGD(0.1, 0, 0)
	s.setLRScale(0.5)
	s.setLRScale(0.5)
	if math.Abs(s.LR-0.05) > 1e-15 {
		t.Fatalf("SGD LR = %v, want 0.05 (no compounding)", s.LR)
	}
	a := NewAdam(0.01, 0)
	a.setLRScale(0.1)
	a.setLRScale(1)
	if math.Abs(a.LR-0.01) > 1e-15 {
		t.Fatalf("Adam LR = %v, want restored 0.01", a.LR)
	}
}

func TestClipGradients(t *testing.T) {
	p := newParam("w", tensor.New(2))
	p.Grad.Data[0], p.Grad.Data[1] = 3, 4 // norm 5
	norm := ClipGradients([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("reported norm = %v, want 5", norm)
	}
	got := math.Hypot(p.Grad.Data[0], p.Grad.Data[1])
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("post-clip norm = %v, want 1", got)
	}
	// below the cap: untouched
	p.Grad.Data[0], p.Grad.Data[1] = 0.3, 0.4
	ClipGradients([]*Param{p}, 1)
	if p.Grad.Data[0] != 0.3 {
		t.Fatal("clip modified in-range gradients")
	}
	// disabled
	p.Grad.Data[0], p.Grad.Data[1] = 30, 40
	ClipGradients([]*Param{p}, 0)
	if p.Grad.Data[0] != 30 {
		t.Fatal("maxNorm<=0 must disable clipping")
	}
}

func TestTrainWithScheduleAndClip(t *testing.T) {
	rng := tensor.NewRNG(31)
	x := tensor.New(60, 4)
	rng.FillNormal(x, 0, 1)
	labels := make([]int, 60)
	for i := range labels {
		if x.Data[i*4] > 0 {
			labels[i] = 1
		}
	}
	net := NewNetwork("sched", 4).Add(NewDense("fc", 4, 2, rng))
	opt := NewAdam(0.01, 0)
	stats := Train(net, x, labels, TrainConfig{
		Epochs: 4, BatchSize: 10, Optimizer: opt, RNG: tensor.NewRNG(32),
		Schedule: StepLR{StepSize: 1, Gamma: 0.5}, ClipNorm: 1,
	})
	if len(stats) != 4 {
		t.Fatalf("stats length %d", len(stats))
	}
	// after 4 epochs the schedule has scaled LR to 0.01 * 0.5^3
	if math.Abs(opt.LR-0.00125) > 1e-12 {
		t.Fatalf("scheduled LR = %v, want 0.00125", opt.LR)
	}
}

func TestDropoutInferencePassThrough(t *testing.T) {
	rng := tensor.NewRNG(33)
	d := NewDropout("drop", 0.5, rng)
	x := tensor.New(2, 10)
	rng.FillNormal(x, 0, 1)
	out := d.Forward(x, false)
	if !out.Equal(x) {
		t.Fatal("inference dropout must be identity")
	}
}

func TestDropoutTrainStatistics(t *testing.T) {
	rng := tensor.NewRNG(34)
	d := NewDropout("drop", 0.3, rng)
	x := tensor.Ones(1, 10000)
	out := d.Forward(x, true)
	zeros := 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		default:
			if math.Abs(v-1/0.7) > 1e-12 {
				t.Fatalf("survivor not scaled: %v", v)
			}
		}
	}
	frac := float64(zeros) / 10000
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("dropped fraction %.3f, want ≈0.3", frac)
	}
	// expectation preserved: mean ≈ 1
	if m := out.Mean(); math.Abs(m-1) > 0.05 {
		t.Fatalf("inverted dropout mean = %v, want ≈1", m)
	}
}

func TestDropoutBackwardMasksGradient(t *testing.T) {
	rng := tensor.NewRNG(35)
	d := NewDropout("drop", 0.5, rng)
	x := tensor.Ones(1, 100)
	out := d.Forward(x, true)
	grad := tensor.Ones(1, 100)
	dx := d.Backward(grad)
	for i := range out.Data {
		if out.Data[i] == 0 && dx.Data[i] != 0 {
			t.Fatal("gradient leaked through dropped unit")
		}
		if out.Data[i] != 0 && math.Abs(dx.Data[i]-2) > 1e-12 {
			t.Fatalf("survivor gradient = %v, want 2", dx.Data[i])
		}
	}
}

func TestDropoutRejectsBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=1 accepted")
		}
	}()
	NewDropout("d", 1, tensor.NewRNG(1))
}

func TestIdentityLayer(t *testing.T) {
	id := NewIdentity("id")
	x := tensor.FromSlice([]float64{1, 2}, 1, 2)
	if id.Forward(x, true) != x || id.Backward(x) != x {
		t.Fatal("identity must pass tensors through")
	}
	if len(id.Params()) != 0 || id.OutShape([]int{3})[0] != 3 {
		t.Fatal("identity metadata wrong")
	}
}

func TestVGGWithDropoutBuildsAndConverts(t *testing.T) {
	rng := tensor.NewRNG(36)
	cfg := ArchConfig{InC: 3, InH: 32, InW: 32, Classes: 10, WidthDiv: 16,
		FCWidth: 16, BatchNorm: true, Pool: AvgPool, Dropout: 0.5, DropoutRNG: tensor.NewRNG(37)}
	net := BuildVGG9(cfg, rng)
	drops := 0
	for _, l := range net.Layers {
		if _, ok := l.(*Dropout); ok {
			drops++
		}
	}
	if drops != 2 {
		t.Fatalf("VGG should carry 2 dropout layers, has %d", drops)
	}
	x := tensor.New(2, 3, 32, 32)
	out := net.Forward(x, false)
	if out.Shape[1] != 10 {
		t.Fatalf("out shape %v", out.Shape)
	}
}
