package dnn

import (
	"fmt"
	"io"

	"repro/internal/tensor"
)

// TrainConfig controls a training run.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	RNG       *tensor.RNG // batch shuffling
	Log       io.Writer   // optional per-epoch progress output
	// MaxBatchesPerEpoch optionally caps work per epoch (0 = no cap);
	// used by fast test and benchmark configurations.
	MaxBatchesPerEpoch int
	// Schedule optionally scales the optimizer's learning rate per
	// epoch (nil = constant).
	Schedule LRSchedule
	// ClipNorm caps the global gradient L2 norm per batch (0 = off).
	ClipNorm float64
	// Augment, when non-nil, mutates each sample (already copied into
	// the batch) before the forward pass — data augmentation.
	Augment func(sample []float64, rng *tensor.RNG)
}

// EpochStats summarizes one epoch of training.
type EpochStats struct {
	Epoch    int
	Loss     float64
	Accuracy float64
}

// Train fits the network to (x, labels) where x is [N, ...sample shape]
// and labels holds N class indices. It returns per-epoch statistics.
func Train(n *Network, x *tensor.Tensor, labels []int, cfg TrainConfig) []EpochStats {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = NewAdam(1e-3, 0)
	}
	if cfg.RNG == nil {
		cfg.RNG = tensor.NewRNG(0)
	}
	nSamples := x.Shape[0]
	sampleLen := x.Len() / nSamples
	sampleShape := x.Shape[1:]

	var stats []EpochStats
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Schedule != nil {
			if sc, ok := cfg.Optimizer.(lrScalable); ok {
				sc.setLRScale(cfg.Schedule.Multiplier(epoch))
			}
		}
		perm := cfg.RNG.Perm(nSamples)
		totalLoss, correct, seen := 0.0, 0, 0
		batches := 0
		for start := 0; start < nSamples; start += cfg.BatchSize {
			if cfg.MaxBatchesPerEpoch > 0 && batches >= cfg.MaxBatchesPerEpoch {
				break
			}
			end := start + cfg.BatchSize
			if end > nSamples {
				end = nSamples
			}
			bs := end - start
			bx := tensor.New(append([]int{bs}, sampleShape...)...)
			by := make([]int, bs)
			for i := 0; i < bs; i++ {
				src := perm[start+i]
				sample := bx.Data[i*sampleLen : (i+1)*sampleLen]
				copy(sample, x.Data[src*sampleLen:(src+1)*sampleLen])
				if cfg.Augment != nil {
					cfg.Augment(sample, cfg.RNG)
				}
				by[i] = labels[src]
			}
			n.ZeroGrads()
			logits := n.Forward(bx, true)
			loss, grad := SoftmaxCrossEntropy(logits, by)
			n.Backward(grad)
			if cfg.ClipNorm > 0 {
				ClipGradients(n.Params(), cfg.ClipNorm)
			}
			cfg.Optimizer.Step(n.Params())

			totalLoss += loss * float64(bs)
			for i, p := range ArgMaxRows(logits) {
				if p == by[i] {
					correct++
				}
			}
			seen += bs
			batches++
		}
		st := EpochStats{Epoch: epoch + 1, Loss: totalLoss / float64(seen), Accuracy: float64(correct) / float64(seen)}
		stats = append(stats, st)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %d/%d: loss=%.4f acc=%.2f%%\n", st.Epoch, cfg.Epochs, st.Loss, 100*st.Accuracy)
		}
	}
	return stats
}

// Evaluate returns the accuracy of the network on (x, labels), running
// inference in batches to bound memory.
func Evaluate(n *Network, x *tensor.Tensor, labels []int, batchSize int) float64 {
	if batchSize <= 0 {
		batchSize = 64
	}
	nSamples := x.Shape[0]
	sampleLen := x.Len() / nSamples
	sampleShape := x.Shape[1:]
	correct := 0
	for start := 0; start < nSamples; start += batchSize {
		end := start + batchSize
		if end > nSamples {
			end = nSamples
		}
		bs := end - start
		bx := tensor.FromSlice(x.Data[start*sampleLen:end*sampleLen], append([]int{bs}, sampleShape...)...)
		for i, p := range n.Predict(bx) {
			if p == labels[start+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(nSamples)
}
