package dnn

import (
	"fmt"

	"repro/internal/tensor"
)

// PoolKind selects the pooling operator.
type PoolKind int

// Pooling operators. DNN-to-SNN conversions use average pooling because
// it maps onto spike accumulation; max pooling is provided for parity
// with conventional DNN baselines.
const (
	AvgPool PoolKind = iota
	MaxPool
)

func (k PoolKind) String() string {
	if k == MaxPool {
		return "max"
	}
	return "avg"
}

// Pool2D is a 2-D pooling layer over [N, C, H, W] inputs with a square
// window of size K and stride K (the non-overlapping pooling used by the
// paper's VGG-16).
type Pool2D struct {
	name string
	Kind PoolKind
	Geom tensor.ConvGeom // KH=KW=Stride=K, Pad=0, InC = channels

	lastArg []int // max-pool winner indices from the last training pass
	lastN   int
}

// NewPool2D constructs a pooling layer with window k and stride k.
func NewPool2D(name string, kind PoolKind, channels, inH, inW, k int) *Pool2D {
	g := tensor.ConvGeom{InC: channels, InH: inH, InW: inW, KH: k, KW: k, Stride: k, Pad: 0}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	if inH%k != 0 || inW%k != 0 {
		panic(fmt.Sprintf("dnn: %s pooling %dx%d does not tile %dx%d input", name, k, k, inH, inW))
	}
	return &Pool2D{name: name, Kind: kind, Geom: g}
}

// Name implements Layer.
func (p *Pool2D) Name() string { return p.name }

// Params implements Layer.
func (p *Pool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (p *Pool2D) OutShape(in []int) []int {
	return []int{p.Geom.InC, p.Geom.OutH(), p.Geom.OutW()}
}

// Forward implements Layer.
func (p *Pool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := p.Geom
	checkBatchShape(p.name, x, g.InC, g.InH, g.InW)
	n := x.Shape[0]
	oh, ow := g.OutH(), g.OutW()
	out := tensor.New(n, g.InC, oh, ow)
	if train && p.Kind == MaxPool {
		p.lastArg = make([]int, n*g.InC*oh*ow)
	}
	p.lastN = n
	inv := 1.0 / float64(g.KH*g.KW)
	for i := 0; i < n; i++ {
		for c := 0; c < g.InC; c++ {
			base := (i*g.InC + c) * g.InH * g.InW
			obase := (i*g.InC + c) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					switch p.Kind {
					case AvgPool:
						s := 0.0
						for ky := 0; ky < g.KH; ky++ {
							row := base + (oy*g.Stride+ky)*g.InW + ox*g.Stride
							for kx := 0; kx < g.KW; kx++ {
								s += x.Data[row+kx]
							}
						}
						out.Data[obase+oy*ow+ox] = s * inv
					case MaxPool:
						best := x.Data[base+(oy*g.Stride)*g.InW+ox*g.Stride]
						bestIdx := base + (oy*g.Stride)*g.InW + ox*g.Stride
						for ky := 0; ky < g.KH; ky++ {
							row := base + (oy*g.Stride+ky)*g.InW + ox*g.Stride
							for kx := 0; kx < g.KW; kx++ {
								if v := x.Data[row+kx]; v > best {
									best, bestIdx = v, row+kx
								}
							}
						}
						out.Data[obase+oy*ow+ox] = best
						if train {
							p.lastArg[obase+oy*ow+ox] = bestIdx
						}
					}
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *Pool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := p.Geom
	n := p.lastN
	oh, ow := g.OutH(), g.OutW()
	dx := tensor.New(n, g.InC, g.InH, g.InW)
	switch p.Kind {
	case AvgPool:
		inv := 1.0 / float64(g.KH*g.KW)
		for i := 0; i < n; i++ {
			for c := 0; c < g.InC; c++ {
				base := (i*g.InC + c) * g.InH * g.InW
				obase := (i*g.InC + c) * oh * ow
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						gv := grad.Data[obase+oy*ow+ox] * inv
						for ky := 0; ky < g.KH; ky++ {
							row := base + (oy*g.Stride+ky)*g.InW + ox*g.Stride
							for kx := 0; kx < g.KW; kx++ {
								dx.Data[row+kx] += gv
							}
						}
					}
				}
			}
		}
	case MaxPool:
		if p.lastArg == nil {
			panic("dnn: MaxPool.Backward before Forward(train=true)")
		}
		for o, src := range p.lastArg {
			dx.Data[src] += grad.Data[o]
		}
	}
	return dx
}
