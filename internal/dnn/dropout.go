package dnn

import (
	"repro/internal/tensor"
)

// Dropout randomly zeroes activations during training with probability
// P, scaling survivors by 1/(1−P) (inverted dropout) so inference is a
// no-op. VGG-style training uses it between the fully connected layers;
// it is transparent to DNN-to-SNN conversion because it vanishes at
// inference.
type Dropout struct {
	name string
	P    float64
	rng  *tensor.RNG
	mask []bool
}

// NewDropout constructs a dropout layer with drop probability p.
func NewDropout(name string, p float64, rng *tensor.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic("dnn: dropout probability must be in [0,1)")
	}
	return &Dropout{name: name, P: p, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		return x
	}
	out := x.Clone()
	d.mask = make([]bool, len(out.Data))
	scale := 1 / (1 - d.P)
	for i := range out.Data {
		if d.rng.Float64() < d.P {
			out.Data[i] = 0
		} else {
			d.mask[i] = true
			out.Data[i] *= scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		// dropout was inactive (P == 0 or inference forward)
		return grad
	}
	dx := grad.Clone()
	scale := 1 / (1 - d.P)
	for i := range dx.Data {
		if d.mask[i] {
			dx.Data[i] *= scale
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}
