package dnn

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestDenseForwardKnown(t *testing.T) {
	rng := tensor.NewRNG(1)
	d := NewDense("fc", 2, 2, rng)
	copy(d.Weight.W.Data, []float64{1, 2, 3, 4}) // W[in][out]
	copy(d.Bias.W.Data, []float64{10, 20})
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	out := d.Forward(x, false)
	want := tensor.FromSlice([]float64{14, 26}, 1, 2)
	if !out.AllClose(want, 1e-12) {
		t.Fatalf("Dense forward = %v, want %v", out, want)
	}
}

func TestDenseRejectsBadInput(t *testing.T) {
	rng := tensor.NewRNG(1)
	d := NewDense("fc", 3, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong input width")
		}
	}()
	d.Forward(tensor.New(1, 4), false)
}

func TestReLUForward(t *testing.T) {
	r := NewReLU("relu")
	x := tensor.FromSlice([]float64{-1, 0, 2}, 1, 3)
	out := r.Forward(x, false)
	want := tensor.FromSlice([]float64{0, 0, 2}, 1, 3)
	if !out.Equal(want) {
		t.Fatalf("ReLU = %v", out)
	}
	if x.Data[0] != -1 {
		t.Fatal("ReLU must not mutate its input")
	}
}

func TestAvgPoolForwardKnown(t *testing.T) {
	p := NewPool2D("pool", AvgPool, 1, 2, 2, 2)
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	out := p.Forward(x, false)
	if out.Len() != 1 || out.Data[0] != 2.5 {
		t.Fatalf("AvgPool = %v, want [2.5]", out)
	}
}

func TestMaxPoolForwardKnown(t *testing.T) {
	p := NewPool2D("pool", MaxPool, 1, 2, 2, 2)
	x := tensor.FromSlice([]float64{1, 7, 3, 4}, 1, 1, 2, 2)
	out := p.Forward(x, false)
	if out.Data[0] != 7 {
		t.Fatalf("MaxPool = %v, want 7", out.Data[0])
	}
}

func TestPoolRejectsNonTiling(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-tiling pool")
		}
	}()
	NewPool2D("pool", AvgPool, 1, 5, 5, 2)
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("flat")
	x := tensor.New(2, 3, 4, 4)
	out := f.Forward(x, true)
	if out.Shape[0] != 2 || out.Shape[1] != 48 {
		t.Fatalf("Flatten shape = %v", out.Shape)
	}
	back := f.Backward(out)
	if !back.SameShape(x) {
		t.Fatalf("Flatten backward shape = %v", back.Shape)
	}
}

func TestBatchNormNormalizesTraining(t *testing.T) {
	bn := NewBatchNorm("bn", 2, true)
	rng := tensor.NewRNG(3)
	x := tensor.New(8, 2, 4, 4)
	rng.FillNormal(x, 5, 3) // far from standardized
	out := bn.Forward(x, true)
	// With gamma=1, beta=0 the per-channel output should be ~N(0,1).
	for c := 0; c < 2; c++ {
		sum, sq, cnt := 0.0, 0.0, 0
		for s := 0; s < 8; s++ {
			base := (s*2 + c) * 16
			for i := 0; i < 16; i++ {
				v := out.Data[base+i]
				sum += v
				sq += v * v
				cnt++
			}
		}
		mean := sum / float64(cnt)
		variance := sq/float64(cnt) - mean*mean
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-3 {
			t.Fatalf("channel %d not normalized: mean=%v var=%v", c, mean, variance)
		}
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm("bn", 1, false)
	// Prime running stats directly.
	bn.RunMean.Data[0] = 2
	bn.RunVar.Data[0] = 4
	x := tensor.FromSlice([]float64{4}, 1, 1)
	out := bn.Forward(x, false)
	want := (4.0 - 2.0) / math.Sqrt(4+bn.Eps)
	if math.Abs(out.Data[0]-want) > 1e-9 {
		t.Fatalf("BN inference = %v, want %v", out.Data[0], want)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := tensor.NewRNG(4)
	logits := tensor.New(5, 7)
	rng.FillNormal(logits, 0, 3)
	sm := Softmax(logits)
	for i := 0; i < 5; i++ {
		s := 0.0
		for j := 0; j < 7; j++ {
			v := sm.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of [0,1]: %v", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("softmax row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxCrossEntropyUniform(t *testing.T) {
	// Zero logits -> loss = ln(C)
	logits := tensor.New(2, 4)
	loss, _ := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-9 {
		t.Fatalf("uniform CE loss = %v, want ln4", loss)
	}
}

func TestAccuracy(t *testing.T) {
	if Accuracy([]int{1, 2, 3}, []int{1, 0, 3}) != 2.0/3.0 {
		t.Fatal("Accuracy wrong")
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestSGDMomentumStep(t *testing.T) {
	p := newParam("w", tensor.FromSlice([]float64{1}, 1))
	p.Grad.Data[0] = 1
	opt := NewSGD(0.1, 0.9, 0)
	opt.Step([]*Param{p})
	if math.Abs(p.W.Data[0]-0.9) > 1e-12 {
		t.Fatalf("after step 1: %v, want 0.9", p.W.Data[0])
	}
	// second step with same grad: v = 0.9*(-0.1) - 0.1 = -0.19
	opt.Step([]*Param{p})
	if math.Abs(p.W.Data[0]-0.71) > 1e-12 {
		t.Fatalf("after step 2: %v, want 0.71", p.W.Data[0])
	}
}

func TestAdamReducesQuadratic(t *testing.T) {
	// minimize f(w) = w² from w=5
	p := newParam("w", tensor.FromSlice([]float64{5}, 1))
	opt := NewAdam(0.1, 0)
	for i := 0; i < 500; i++ {
		p.ZeroGrad()
		p.Grad.Data[0] = 2 * p.W.Data[0]
		opt.Step([]*Param{p})
	}
	if math.Abs(p.W.Data[0]) > 0.01 {
		t.Fatalf("Adam failed to minimize quadratic: w=%v", p.W.Data[0])
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	p := newParam("w", tensor.FromSlice([]float64{1}, 1))
	opt := NewSGD(0.1, 0, 0.5)
	opt.Step([]*Param{p}) // grad 0, decay pulls toward 0
	if p.W.Data[0] >= 1 {
		t.Fatalf("weight decay had no effect: %v", p.W.Data[0])
	}
}

func TestNetworkSaveLoadRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(5)
	build := func(r *tensor.RNG) *Network {
		n := NewNetwork("t", 1, 4, 4)
		g := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
		n.Add(NewConv2D("c1", 2, g, r), NewBatchNorm("c1.bn", 2, true), NewReLU("r1"),
			NewFlatten("f"), NewDense("fc", 32, 3, r))
		return n
	}
	src := build(rng)
	src.Layers[1].(*BatchNorm).RunMean.Data[0] = 0.7
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := build(tensor.NewRNG(999)) // different init, must be overwritten
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 1, 4, 4)
	tensor.NewRNG(6).FillNormal(x, 0, 1)
	if !src.Forward(x, false).AllClose(dst.Forward(x, false), 1e-12) {
		t.Fatal("loaded network disagrees with saved network")
	}
	if dst.Layers[1].(*BatchNorm).RunMean.Data[0] != 0.7 {
		t.Fatal("running stats not restored")
	}
}

func TestNetworkLoadMissingParam(t *testing.T) {
	rng := tensor.NewRNG(7)
	small := NewNetwork("s", 4).Add(NewDense("a", 4, 2, rng))
	var buf bytes.Buffer
	if err := small.Save(&buf); err != nil {
		t.Fatal(err)
	}
	big := NewNetwork("b", 4).Add(NewDense("a", 4, 2, rng), NewDense("zzz", 2, 2, rng))
	if err := big.Load(&buf); err == nil {
		t.Fatal("Load should fail on missing parameter")
	}
}

func TestNetworkOutShape(t *testing.T) {
	rng := tensor.NewRNG(8)
	cfg := ArchConfig{InC: 3, InH: 32, InW: 32, Classes: 10, WidthDiv: 8, FCWidth: 32, BatchNorm: true, Pool: AvgPool}
	net := BuildVGG16(cfg, rng)
	out := net.OutShape()
	if len(out) != 1 || out[0] != 10 {
		t.Fatalf("VGG16 OutShape = %v", out)
	}
}

func TestBuildVGG16LayerNames(t *testing.T) {
	rng := tensor.NewRNG(9)
	cfg := ArchConfig{InC: 3, InH: 32, InW: 32, Classes: 10, WidthDiv: 8, FCWidth: 32, Pool: AvgPool}
	net := BuildVGG16(cfg, rng)
	convs, fcs := 0, 0
	names := map[string]bool{}
	for _, l := range net.Layers {
		names[l.Name()] = true
		switch l.(type) {
		case *Conv2D:
			convs++
		case *Dense:
			fcs++
		}
	}
	if convs != 13 || fcs != 3 {
		t.Fatalf("VGG-16 has %d convs and %d FCs, want 13/3", convs, fcs)
	}
	for _, want := range []string{"Conv1-1", "Conv2-1", "Conv3-3", "Conv5-3", "FC6", "FC8"} {
		if !names[want] {
			t.Fatalf("missing expected layer name %s (have %v)", want, names)
		}
	}
}

func TestBuildLeNetShapes(t *testing.T) {
	rng := tensor.NewRNG(10)
	cfg := ArchConfig{InC: 1, InH: 28, InW: 28, Classes: 10, FCWidth: 64, BatchNorm: true, Pool: AvgPool}
	net := BuildLeNet(cfg, rng)
	x := tensor.New(2, 1, 28, 28)
	out := net.Forward(x, false)
	if out.Shape[0] != 2 || out.Shape[1] != 10 {
		t.Fatalf("LeNet out shape = %v", out.Shape)
	}
}

func TestForwardCollectVisitsAllLayers(t *testing.T) {
	rng := tensor.NewRNG(11)
	cfg := ArchConfig{InC: 1, InH: 8, InW: 8, Classes: 4, FCWidth: 8, Pool: AvgPool}
	net := BuildLeNet(cfg, rng)
	x := tensor.New(1, 1, 8, 8)
	visited := 0
	net.ForwardCollect(x, func(i int, l Layer, out *tensor.Tensor) { visited++ })
	if visited != len(net.Layers) {
		t.Fatalf("visited %d layers, want %d", visited, len(net.Layers))
	}
}

func TestTrainLearnsSeparableProblem(t *testing.T) {
	// Two well-separated Gaussian blobs in 8-D must be learnable to
	// near-100% by a small dense net within a few epochs.
	rng := tensor.NewRNG(12)
	n := 200
	x := tensor.New(n, 8)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		labels[i] = cls
		for j := 0; j < 8; j++ {
			center := -1.0
			if cls == 1 {
				center = 1.0
			}
			x.Data[i*8+j] = center + 0.3*rng.Norm()
		}
	}
	net := NewNetwork("mlp", 8).Add(
		NewDense("fc1", 8, 16, rng), NewReLU("r1"), NewDense("fc2", 16, 2, rng))
	stats := Train(net, x, labels, TrainConfig{
		Epochs: 5, BatchSize: 16, Optimizer: NewAdam(0.01, 0), RNG: tensor.NewRNG(13)})
	if len(stats) != 5 {
		t.Fatalf("expected 5 epoch stats, got %d", len(stats))
	}
	if acc := Evaluate(net, x, labels, 32); acc < 0.95 {
		t.Fatalf("training failed to fit separable data: acc=%.2f", acc)
	}
	if stats[4].Loss >= stats[0].Loss {
		t.Fatalf("loss did not decrease: %v -> %v", stats[0].Loss, stats[4].Loss)
	}
}

func TestTrainMaxBatchesCap(t *testing.T) {
	rng := tensor.NewRNG(14)
	x := tensor.New(100, 4)
	rng.FillNormal(x, 0, 1)
	labels := make([]int, 100)
	net := NewNetwork("mlp", 4).Add(NewDense("fc", 4, 2, rng))
	stats := Train(net, x, labels, TrainConfig{Epochs: 1, BatchSize: 10, MaxBatchesPerEpoch: 2, RNG: tensor.NewRNG(1)})
	// only 20 samples seen; accuracy/loss must still be well-defined
	if math.IsNaN(stats[0].Loss) {
		t.Fatal("loss is NaN with capped batches")
	}
}

func TestNumParams(t *testing.T) {
	rng := tensor.NewRNG(15)
	net := NewNetwork("p", 4).Add(NewDense("fc", 4, 3, rng))
	if got := net.NumParams(); got != 4*3+3 {
		t.Fatalf("NumParams = %d, want 15", got)
	}
}
