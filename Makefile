# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test check bench faultbench serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the tier-1 verification gate: static analysis plus the full
# suite under the race detector (Evaluate fans samples across workers).
# The simulation-heavy experiments package needs more than go test's
# default 10m deadline under -race.
check:
	$(GO) vet ./...
	$(GO) test -race -timeout 45m ./...
	$(MAKE) serve-smoke

# serve-smoke boots cmd/snnserve on a tiny model, replays load with
# cmd/snnload, and asserts non-zero throughput plus a clean SIGTERM
# drain — the serving layer's end-to-end gate.
serve-smoke:
	bash scripts/serve_smoke.sh

bench:
	$(GO) test -bench=. -benchmem .

faultbench:
	$(GO) run ./cmd/faultbench -scale tiny
