# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test check bench faultbench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the tier-1 verification gate: static analysis plus the full
# suite under the race detector (Evaluate fans samples across workers).
# The simulation-heavy experiments package needs more than go test's
# default 10m deadline under -race.
check:
	$(GO) vet ./...
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -bench=. -benchmem .

faultbench:
	$(GO) run ./cmd/faultbench -scale tiny
