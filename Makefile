# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test check bench bench-smoke bench-paper benchdiff faultbench serve-smoke gate-smoke stream-smoke quant-parity profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the tier-1 verification gate: static analysis plus the full
# suite under the race detector (Evaluate fans samples across workers).
# The simulation-heavy experiments package needs more than go test's
# default 10m deadline under -race.
check:
	$(GO) vet ./...
	$(GO) test -race -timeout 45m ./...
	$(MAKE) quant-parity
	$(MAKE) serve-smoke
	$(MAKE) gate-smoke
	$(MAKE) stream-smoke
	$(MAKE) bench-smoke
	bash scripts/benchdiff.sh --if-baseline

# quant-parity is the int8 engine's accuracy gate: argmax agreement
# between the fixed-point and float64 clocked engines over the pinned
# fixture, failing below the baseline in quant_test.go (quantParityMin).
quant-parity:
	$(GO) test -run 'TestQuantEngineFixtureParity' -count=1 -v ./internal/core/

# serve-smoke boots cmd/snnserve on a tiny model, replays load with
# cmd/snnload, and asserts non-zero throughput plus a clean SIGTERM
# drain — the serving layer's end-to-end gate.
serve-smoke:
	bash scripts/serve_smoke.sh

# gate-smoke is the fleet chaos gate: two snnserve replicas behind
# cmd/snngate, a backend killed -9 mid-load with zero client-visible
# failures, eviction + readmission through the probe ladder, and a
# golden-checked rolling hot-swap under load.
gate-smoke:
	bash scripts/gate_smoke.sh

# stream-smoke is the /v1/stream gate: N frames in = N events out with
# streamed predictions bit-identical to one-shot /v1/infer across the
# NDJSON and binary lanes, plus a chaos leg where sessions ride through
# a mid-run backend kill behind snngate with zero client-visible
# failures (resuming from in-band retry events).
stream-smoke:
	bash scripts/stream_smoke.sh

# bench runs the inference hot-path benchmarks and records ns/op,
# B/op, allocs/op as machine-readable BENCH_<date>.json.
bench:
	bash scripts/bench.sh

# bench-smoke is the 1-iteration variant wired into check: proves the
# benchmarks and the JSON emitter still work without paying bench time.
bench-smoke:
	bash scripts/bench.sh --smoke

# benchdiff compares the two newest BENCH_*.json records and fails on
# >10% ns/op growth or any allocs/op increase; check runs it in
# --if-baseline mode, which skips until a comparable pair exists.
benchdiff:
	bash scripts/benchdiff.sh

# bench-paper reproduces the paper's tables/figures benchmarks.
bench-paper:
	$(GO) test -bench=. -benchmem .

faultbench:
	$(GO) run ./cmd/faultbench -scale tiny

# profile boots snnserve with -pprof, captures a CPU profile while
# snnload drives traffic, and writes profile_serve.pb.gz — the evidence
# base for serve-path perf PRs. PROFILE_ARGS passes extra snnload flags
# (e.g. PROFILE_ARGS='-wire binary').
profile:
	bash scripts/profile.sh
