// hw_deploy: the deployment-engineering view of a T2FSNN — quantize the
// converted network to hardware-friendly fixed point, map it onto
// TrueNorth- and SpiNNaker-style fabrics, and estimate core counts and
// network-on-chip spike traffic for a measured workload.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func main() {
	p, err := experiments.ParamsFor("mnist", experiments.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	s, err := experiments.Prepare(p, "", os.Stderr)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Fixed-point sweep: accuracy vs weight bit width.
	fmt.Println("weight quantization sweep (dynamic fixed point, per-stage formats):")
	fmt.Printf("%6s %12s %12s\n", "bits", "RMS error", "accuracy")
	evalN := 50
	x := tensor.FromSlice(s.EvalX.Data[:evalN*s.Conv.Net.InLen], evalN, s.Conv.Net.InLen)
	for _, bits := range []int{0, 12, 8, 6, 4} {
		net := s.Conv.Net
		rms := 0.0
		if bits > 0 {
			qnet, _, err := quant.QuantizeNet(s.Conv.Net, bits)
			if err != nil {
				log.Fatal(err)
			}
			rms = quant.RMSError(s.Conv.Net, qnet)
			net = qnet
		}
		m, err := core.NewModel(net, p.T, p.TauInit, p.TdInit)
		if err != nil {
			log.Fatal(err)
		}
		ev, err := core.Evaluate(m, x, s.EvalY[:evalN], core.EvalOptions{
			Run: core.RunConfig{EarlyFire: true}})
		if err != nil {
			log.Fatal(err)
		}
		label := "float64"
		if bits > 0 {
			label = fmt.Sprintf("%d", bits)
		}
		fmt.Printf("%6s %12.5f %11.1f%%\n", label, rms, 100*ev.Accuracy)
	}

	// 2. Core mapping + traffic on both fabrics.
	m, err := core.NewModel(s.Conv.Net, p.T, p.TauInit, p.TdInit)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := core.Evaluate(m, x, s.EvalY[:evalN], core.EvalOptions{
		Run: core.RunConfig{EarlyFire: true}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, fabric := range []hw.Fabric{hw.TrueNorth, hw.SpiNNaker} {
		mapping, err := hw.Map(s.Conv.Net, fabric)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(mapping.Report())
		traffic, err := mapping.Traffic(ev.SpikesPerStage)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("NoC traffic: %.0f spike deliveries per inference (%.0f raw spikes)\n\n",
			traffic, ev.AvgSpikes)
	}
}
