// Quickstart: train a small DNN, convert it to a spiking network, and
// run T2FSNN inference with time-to-first-spike coding — the minimal
// end-to-end tour of the library.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/tensor"
)

func main() {
	// 1. A toy two-class problem: bright blobs on the left or right half
	// of an 8×8 image.
	rng := tensor.NewRNG(1)
	n := 200
	x := tensor.New(n, 1, 8, 8)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		labels[i] = cls
		xOff := 1 + cls*4
		for dy := 0; dy < 3; dy++ {
			for dx := 0; dx < 3; dx++ {
				x.Set(tensor.Clamp(0.9+0.1*rng.Norm(), 0, 1), i, 0, 2+dy, xOff+dx)
			}
		}
	}

	// 2. Train a small ReLU CNN (the DNN-to-SNN conversion needs
	// Conv/Dense + ReLU + AvgPool).
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	net := dnn.NewNetwork("quickstart", 1, 8, 8).Add(
		dnn.NewConv2D("Conv1", 4, g, rng),
		dnn.NewReLU("Conv1.relu"),
		dnn.NewPool2D("Pool1", dnn.AvgPool, 4, 8, 8, 2),
		dnn.NewFlatten("Flatten"),
		dnn.NewDense("FC2", 4*4*4, 2, rng),
	)
	dnn.Train(net, x, labels, dnn.TrainConfig{Epochs: 5, BatchSize: 20,
		Optimizer: dnn.NewAdam(2e-3, 0), RNG: tensor.NewRNG(2)})
	fmt.Printf("DNN accuracy: %.1f%%\n", 100*dnn.Evaluate(net, x, labels, 50))

	// 3. Convert: fold BatchNorm (none here), normalize activations with
	// the 99.9th percentile, emit the spiking network.
	res, err := convert.Convert(net, convert.Options{Calibration: x})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Equip the network with TTFS kernels (window T=32, τ=8) and run
	// the T2FSNN pipeline on one sample.
	model, err := core.NewModel(res.Net, 32, 8, 0)
	if err != nil {
		log.Fatal(err)
	}
	sample := x.Data[:64]
	r := model.Infer(sample, core.RunConfig{})
	fmt.Printf("T2FSNN baseline: pred=%d latency=%d steps, %d spikes (≤1 per neuron)\n",
		r.Pred, r.Latency, r.TotalSpikes)

	// 5. Early firing halves the latency.
	ef := model.Infer(sample, core.RunConfig{EarlyFire: true})
	fmt.Printf("T2FSNN+EF:       pred=%d latency=%d steps, %d spikes\n",
		ef.Pred, ef.Latency, ef.TotalSpikes)

	// 6. Whole-set accuracy through the spiking pipeline.
	flat := x.Reshape(n, 64)
	ev, err := core.Evaluate(model, flat, labels, core.EvalOptions{
		Run: core.RunConfig{EarlyFire: true}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T2FSNN+EF accuracy over %d samples: %.1f%% (avg %.0f spikes/sample)\n",
		ev.N, 100*ev.Accuracy, ev.AvgSpikes)
	if ev.Accuracy < 0.9 {
		fmt.Fprintln(os.Stderr, "warning: spiking accuracy unexpectedly low")
		os.Exit(1)
	}
}
