// mnist_ttfs: the full pipeline the paper's MNIST column of Table II
// exercises — train a LeNet on the synthetic MNIST-like set, convert it,
// apply the gradient-based kernel optimization, and compare the four
// T2FSNN variants on latency, accuracy and spike count.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	p, err := experiments.ParamsFor("mnist", experiments.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	s, err := experiments.Prepare(p, "", os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DNN test accuracy: %.1f%%\n", 100*s.DNNAcc)

	vars, err := experiments.Variants(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %8s %10s %10s\n", "variant", "latency", "accuracy", "spikes")
	for _, v := range vars {
		ev, err := experiments.EvalVariant(s, v, core.EvalOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %8d %9.1f%% %10.0f\n",
			v.Name, ev.Latency, 100*ev.Accuracy, ev.AvgSpikes)
	}

	// Per-layer spike statistics of the optimized early-firing variant:
	// TTFS guarantees at most one spike per neuron, so per-boundary
	// counts are bounded by the layer sizes.
	ev, err := experiments.EvalVariant(s, vars[3], core.EvalOptions{CollectStats: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-boundary average spikes (T2FSNN+GO+EF):")
	for i, st := range ev.StageStats {
		fmt.Printf("  %-10s avg %.0f spikes, first spike at step %d\n",
			st.Name, ev.SpikesPerStage[i], st.FirstSpike)
	}
}
