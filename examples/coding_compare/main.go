// coding_compare: run the same converted network under rate, phase,
// burst, and TTFS (T2FSNN) coding and compare accuracy, spikes and
// estimated energy — a miniature of the paper's Table II on the
// CIFAR-10-like task.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/experiments"
)

func main() {
	p, err := experiments.ParamsFor("cifar10", experiments.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	s, err := experiments.Prepare(p, "", os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DNN test accuracy: %.1f%%  (converted VGG, %d spiking stages)\n\n",
		100*s.DNNAcc, len(s.Conv.Net.Stages))

	type row struct {
		name    string
		acc     float64
		latency int
		spikes  float64
	}
	var rows []row

	for _, b := range []struct {
		scheme coding.Scheme
		steps  int
	}{
		{coding.Rate{}, p.RateSteps},
		{coding.Phase{}, p.PhaseSteps},
		{coding.Burst{}, p.BurstSteps},
	} {
		ev, err := coding.Evaluate(b.scheme, s.Conv.Net, s.EvalX, s.EvalY, b.steps, p.CurveStride)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{b.scheme.Name(), ev.Accuracy, b.steps, ev.AvgSpikes})
	}

	vars, err := experiments.Variants(s)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := experiments.EvalVariant(s, vars[3], core.EvalOptions{}) // GO+EF
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"T2FSNN+GO+EF", ev.Accuracy, ev.Latency, ev.AvgSpikes})

	base := rows[0]
	fmt.Printf("%-14s %9s %8s %12s %10s %10s\n",
		"coding", "accuracy", "latency", "spikes", "energy TN", "energy SN")
	for _, r := range rows {
		tn, _ := energy.TrueNorth.Normalized(r.spikes, float64(r.latency), base.spikes, float64(base.latency))
		sn, _ := energy.SpiNNaker.Normalized(r.spikes, float64(r.latency), base.spikes, float64(base.latency))
		fmt.Printf("%-14s %8.1f%% %8d %12.0f %10.3f %10.3f\n",
			r.name, 100*r.acc, r.latency, r.spikes, tn, sn)
	}
	fmt.Println("\n(energy normalized to rate coding; TTFS emits at most one spike per neuron)")
}
