// kernel_playground: a hands-on tour of the TTFS kernel mathematics at
// the heart of T2FSNN — encoding, decoding, the precision/representation
// trade-off of the time constant τ, and the gradient-based optimization
// (paper §III-B, Eqs. 5–14).
package main

import (
	"fmt"
	"log"

	"repro/internal/kernel"
	"repro/internal/tensor"
)

func main() {
	// Encoding turns a membrane potential into a spike time: bigger
	// values fire earlier (time-to-first-spike).
	k, err := kernel.New(4, 0, 20) // τ=4, t_d=0, window T=20
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("value  -> spike time -> decoded   (τ=4, T=20)")
	for _, u := range []float64{1.0, 0.5, 0.2, 0.05, 0.01, 0.001} {
		t, fired := k.Encode(u)
		if !fired {
			fmt.Printf("%6.3f -> no spike (below ZMin=%.4f)\n", u, k.ZMin())
			continue
		}
		fmt.Printf("%6.3f -> t=%2d      -> %.4f\n", u, t, k.Decode(t))
	}

	// The τ trade-off: small τ covers tiny values but quantizes
	// coarsely; large τ is precise but cannot express small values.
	fmt.Println("\nτ trade-off over a T=20 window:")
	fmt.Printf("%4s %12s %12s %16s\n", "τ", "ZMin", "ZMax", "rel. precision")
	for _, tau := range []float64{1, 2, 4, 8, 18} {
		kt := kernel.Kernel{Tau: tau, Td: 0, T: 20}
		fmt.Printf("%4.0f %12.2e %12.2f %15.1f%%\n",
			tau, kt.ZMin(), kt.ZMax(), 100*kt.PrecisionError(1))
	}

	// Gradient-based optimization finds the balance automatically. Use a
	// skewed activation distribution (typical of normalized post-ReLU
	// layers) and watch τ converge from both directions, as in Fig. 4.
	rng := tensor.NewRNG(7)
	zbar := make([]float64, 20000)
	for i := range zbar {
		v := rng.Float64()
		zbar[i] = v * v * v
	}
	for _, tau0 := range []float64{2, 18} {
		res, err := kernel.Optimize(kernel.Kernel{Tau: tau0, Td: 0, T: 20}, zbar,
			kernel.OptimizeConfig{LRTau: 2, LRTd: 0.2, BatchSize: 256, Epochs: 2, RNG: tensor.NewRNG(8)})
		if err != nil {
			log.Fatal(err)
		}
		first, last := res.History[0], res.History[len(res.History)-1]
		fmt.Printf("\nGO from τ=%-2.0f: τ -> %.2f, t_d -> %.2f\n", tau0, res.Kernel.Tau, res.Kernel.Td)
		fmt.Printf("  L_prec %.2e -> %.2e | L_min %.2e -> %.2e | L_max %.2e -> %.2e\n",
			first.Prec, last.Prec, first.Min, last.Min, first.Max, last.Max)
	}

	// The discussion section notes ε(t) can be a lookup table on
	// hardware; the LUT decode is bit-exact with the analytic kernel.
	lut := kernel.NewLUT(k)
	for t := 0; t < k.T; t++ {
		if lut.Decode(t) != k.Decode(t) {
			log.Fatalf("LUT mismatch at t=%d", t)
		}
	}
	fmt.Println("\nLUT decode verified bit-exact against exp() over the full window.")
}
