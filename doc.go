// Package repro is a from-scratch Go reproduction of "T2FSNN: Deep
// Spiking Neural Networks with Time-to-first-spike Coding" (Park, Kim,
// Na, Yoon — DAC 2020, arXiv:2003.11741).
//
// The implementation lives under internal/: a tensor/linear-algebra
// substrate, a trainable DNN stack, synthetic datasets, the DNN-to-SNN
// conversion pipeline, the TTFS kernels with gradient-based
// optimization, the T2FSNN pipelined model with early firing, the three
// baseline coding schemes (rate, phase, burst), energy and op-count
// models, and an experiment harness that regenerates every table and
// figure of the paper. See README.md, DESIGN.md and EXPERIMENTS.md.
//
// The benchmarks in bench_test.go regenerate each experiment at reduced
// scale: go test -bench=. -benchmem .
package repro
