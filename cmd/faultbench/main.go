// Command faultbench sweeps fault-injection intensity across coding
// schemes and reports accuracy-versus-fault-rate curves — the
// robustness counterpart of the paper's Table II. TTFS encodes each
// activation in a single spike time, so it is maximally fragile; rate
// coding spreads the same information over many spikes and degrades
// gracefully. The sweep is deterministic for a fixed -seed at any
// worker count.
//
// Usage:
//
//	faultbench [-scale tiny|small|full] [-dataset mnist|cifar10|cifar100]
//	           [-schemes ttfs,rate,phase,burst] [-faults drop,jitter,...]
//	           [-seed N] [-cache DIR] [-quiet] [-out FILE]
//
// Fault models: drop (per-spike loss probability), jitter (delivery
// delay in steps), stuck-silent (dead neuron fraction), threshold-noise
// (per-step multiplicative threshold sigma), weight-noise (static
// weight perturbation sigma).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "tiny", "experiment scale: tiny|small|full")
	datasetFlag := flag.String("dataset", "mnist", "dataset: mnist|cifar10|cifar100")
	schemesFlag := flag.String("schemes", "ttfs,rate,phase,burst", "comma-separated coding schemes")
	faultsFlag := flag.String("faults", "", "comma-separated fault models (default: all)")
	seedFlag := flag.Uint64("seed", 42, "fault stream seed")
	workersFlag := flag.Int("workers", -1, "TTFS evaluation workers (-1 = GOMAXPROCS)")
	cacheFlag := flag.String("cache", "models", "weight cache directory (empty to disable)")
	quietFlag := flag.Bool("quiet", false, "suppress progress logging")
	outFlag := flag.String("out", "", "also write the report to FILE")
	flag.Parse()

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	faults, err := experiments.FaultModelsByName(splitList(*faultsFlag))
	if err != nil {
		fatal(err)
	}
	var log io.Writer = os.Stderr
	if *quietFlag {
		log = nil
	}

	res, err := experiments.Resilience(scale, experiments.ResilienceOptions{
		Dataset: *datasetFlag,
		Schemes: splitList(*schemesFlag),
		Faults:  faults,
		Seed:    *seedFlag,
		Workers: *workersFlag,
	}, *cacheFlag, log)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.Report)
	if *outFlag != "" {
		if err := os.WriteFile(*outFlag, []byte(res.Report), 0o644); err != nil {
			fatal(fmt.Errorf("writing report: %w", err))
		}
		if log != nil {
			fmt.Fprintf(log, "wrote %s\n", *outFlag)
		}
	}
}

// splitList parses a comma-separated flag, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultbench:", err)
	os.Exit(1)
}
