package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stream"
	"repro/internal/wire"
)

// streamCounters aggregates session outcomes into the run's shared
// accounting (the same counters the one-shot pool fills, so RESULT is
// computed identically in both modes).
type streamCounters struct {
	ok, errs, failed *atomic.Int64
	correct          *atomic.Int64
	connErr          *atomic.Int64
	// streamRetries counts session interruptions the client resumed
	// from: terminal retry/drain events plus raw disconnects.
	streamRetries *atomic.Int64

	mu   *sync.Mutex
	lats *[]time.Duration

	// preds[predIdx[i]] receives frame i's prediction.
	preds   []atomic.Int32
	predIdx []int
}

// streamSession is one worker's streaming client: it owns a contiguous
// range of the frame schedule and drives it through as many
// connections as the fleet requires, resuming from the first unacked
// frame after every retry event, drain event, or disconnect. Frames
// are sent in lockstep — one in flight at a time — so each event's
// latency is the full frame round trip.
type streamSession struct {
	client   *http.Client
	url      string
	clientID string
	binary   bool
	lane     wire.Lane
	retries  int

	buf  []byte // binary frame scratch, reused per send
	jenc *json.Encoder
	jw   *io.PipeWriter
}

// run drives frames[lo:hi] to completion. Progress is monotone: a
// frame is resent only if its event never arrived, and a connection
// that makes no progress at all counts against the stall budget (the
// -retries flag); exhausting it marks the remaining range failed so a
// dead fleet produces a RESULT line instead of a hang.
func (s *streamSession) run(inputs [][]float64, labels []int, lo, hi int, ct *streamCounters) {
	pos := lo
	stall := 0
	backoff := 2 * time.Millisecond
	for pos < hi {
		before := pos
		wait, err := s.connect(inputs, labels, &pos, hi, ct)
		if pos >= hi && err == nil {
			return
		}
		if pos > before {
			stall, backoff = 0, 2*time.Millisecond
		} else {
			stall++
			if stall > s.retries {
				ct.failed.Add(int64(hi - pos))
				return
			}
		}
		if wait <= 0 {
			wait = backoff
			backoff *= 2
		}
		time.Sleep(wait)
	}
}

// connect runs one connection's worth of the session: open the stream,
// send frames from *pos in lockstep, advance *pos per event. Returns
// the server-suggested reconnect delay (from a retry event) and the
// error that ended the connection (nil when the range completed).
func (s *streamSession) connect(inputs [][]float64, labels []int, pos *int, hi int, ct *streamCounters) (time.Duration, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, s.url, pr)
	if err != nil {
		pw.Close()
		return 0, err
	}
	if s.binary {
		req.Header.Set("Content-Type", wire.ContentType)
		req.Header.Set("Accept", wire.ContentType)
	} else {
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Accept", stream.FormatNDJSON.ContentType())
	}
	if s.clientID != "" {
		req.Header.Set("X-Client-ID", s.clientID)
	}
	// Do returns once response headers arrive — the server commits to
	// the stream immediately — while the transport keeps reading the
	// request body (our pipe) in the background.
	resp, err := s.client.Do(req)
	if err != nil {
		pw.Close()
		ct.connErr.Add(1)
		return 0, err
	}
	defer resp.Body.Close()
	defer pw.Close()
	if resp.StatusCode != http.StatusOK {
		// Admission rejection (429/503/404): no frame was consumed.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		var wait time.Duration
		if d, honored := retryDelay(resp.Header.Get("Retry-After"), 0); honored {
			wait = d
		}
		ct.connErr.Add(1)
		return wait, fmt.Errorf("stream rejected: status %d", resp.StatusCode)
	}
	events, err := stream.NewEventDecoder(resp.Body, resp.Header.Get("Content-Type"))
	if err != nil {
		return 0, err
	}
	s.jw = pw
	s.jenc = json.NewEncoder(pw)
	var ev stream.Event
	for *pos < hi {
		i := *pos
		if err := s.sendFrame(inputs[i], labels[i]); err != nil {
			ct.connErr.Add(1)
			ct.streamRetries.Add(1)
			return 0, err
		}
		t0 := time.Now()
		if err := events.Next(&ev); err != nil {
			// Disconnect with a frame in flight: the frame is unacked
			// and will be resent (deterministic inference makes the
			// possible duplicate harmless).
			ct.connErr.Add(1)
			ct.streamRetries.Add(1)
			return 0, err
		}
		switch ev.Kind {
		case stream.KindFrame:
			ct.ok.Add(1)
			if ev.Pred == labels[i] {
				ct.correct.Add(1)
			}
			ct.preds[ct.predIdx[i]].Store(int32(ev.Pred))
			ct.mu.Lock()
			*ct.lats = append(*ct.lats, time.Since(t0))
			ct.mu.Unlock()
			*pos = i + 1
		case stream.KindError:
			// The server answered the frame with an in-band error: the
			// frame is consumed (acked), just not usefully.
			ct.errs.Add(1)
			*pos = i + 1
		case stream.KindRetry:
			ct.streamRetries.Add(1)
			return time.Duration(ev.RetryAfterMs) * time.Millisecond,
				fmt.Errorf("stream retry: %s", ev.Msg)
		case stream.KindDrain:
			ct.streamRetries.Add(1)
			return 0, fmt.Errorf("stream drain: %s", ev.Msg)
		default:
			ct.connErr.Add(1)
			return 0, fmt.Errorf("unknown event kind %q", ev.Kind)
		}
	}
	// Range complete: close the request side and let the server end the
	// session on EOF.
	pw.Close()
	return 0, nil
}

// sendFrame writes one frame in the session's wire format.
func (s *streamSession) sendFrame(input []float64, label int) error {
	if s.binary {
		s.buf = wire.AppendRequest(s.buf[:0], wire.Request{
			Lane:   s.lane,
			Sample: -1,
			Label:  label,
		}, input)
		_, err := s.jw.Write(s.buf)
		return err
	}
	l := label
	return s.jenc.Encode(frameBody{Input: input, Label: &l})
}

// frameBody is the JSON frame the serve layer's stream decoder reads.
type frameBody struct {
	Input []float64 `json:"input"`
	Label *int      `json:"label,omitempty"`
}

// runStream partitions the frame schedule into sessions contiguous
// ranges and runs them concurrently. Returns the number of sessions
// launched (the rest of the accounting lands in ct).
func runStream(client *http.Client, url, clientID string, binary bool, lane wire.Lane, retries, sessions int, inputs [][]float64, labels []int, ct *streamCounters) int {
	n := len(inputs)
	if sessions > n {
		sessions = n
	}
	if sessions < 1 {
		sessions = 1
	}
	var wg sync.WaitGroup
	per := (n + sessions - 1) / sessions
	launched := 0
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		launched++
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s := &streamSession{client: client, url: url, clientID: clientID, binary: binary, lane: lane, retries: retries}
			s.run(inputs, labels, lo, hi, ct)
		}(lo, hi)
	}
	wg.Wait()
	return launched
}
