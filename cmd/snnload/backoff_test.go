package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// A 429 carrying "Retry-After: 0" means "retry immediately" — the shed
// window has already passed. The old guard (ra > 0) dropped it and slept
// the exponential backoff instead, and never counted the header as seen.
func TestPostHonorsRetryAfterZero(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(serve.InferResponse{Pred: 7})
	}))
	defer srv.Close()

	p := &poster{client: srv.Client(), url: srv.URL, contentType: "application/json"}
	out, meta, err := p.post([]byte(`{"input":[0]}`), 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Pred != 7 {
		t.Fatalf("pred = %d, want 7", out.Pred)
	}
	if meta.rejected != 1 {
		t.Fatalf("rejected = %d, want 1", meta.rejected)
	}
	if meta.retryAfterSeen != 1 {
		t.Fatalf("retryAfterSeen = %d, want 1 (Retry-After: 0 dropped)", meta.retryAfterSeen)
	}
}

// The backoff ladder: Retry-After wins whenever it parses as a
// non-negative integer (including 0); malformed or missing values fall
// back to the caller's exponential backoff and are not counted as
// honored.
func TestRetryDelayLadder(t *testing.T) {
	cases := []struct {
		header  string
		backoff time.Duration
		want    time.Duration
		honored bool
	}{
		{"0", 4 * time.Millisecond, 0, true},
		{"1", 4 * time.Millisecond, time.Second, true},
		{" 2 ", 8 * time.Millisecond, 2 * time.Second, true},
		{"", 4 * time.Millisecond, 4 * time.Millisecond, false},
		{"soon", 4 * time.Millisecond, 4 * time.Millisecond, false},
		{"-1", 16 * time.Millisecond, 16 * time.Millisecond, false},
		{"1.5", 32 * time.Millisecond, 32 * time.Millisecond, false},
	}
	for _, c := range cases {
		got, honored := retryDelay(c.header, c.backoff)
		if got != c.want || honored != c.honored {
			t.Errorf("retryDelay(%q, %v) = (%v, %v), want (%v, %v)",
				c.header, c.backoff, got, honored, c.want, c.honored)
		}
	}
}
