// Command snnload is a deterministic load generator for cmd/snnserve:
// it regenerates a synthetic evaluation set (same generator the server
// and experiments use, so sample i is always the same image), replays
// it over POST /v1/infer — or POST /v1/models/{name}/infer when -model
// is given — from -c concurrent clients, and reports throughput,
// wall-clock latency percentiles, and accuracy.
//
//	snnload -addr http://127.0.0.1:8080 -dataset mnist -n 500 -c 8
//	snnload -model rate -client-id canary -timeout-ms 50 -tolerate-shed
//
// The final line is machine-readable:
//
//	RESULT ok=500 err=0 failed=0 rejected=0 shed=0 expired=0 retry_after=0 wall_s=1.23 throughput=406.5 p50_ms=18.2 p99_ms=44.0 acc=0.96 early_exit=0 events_saved=0 conn_err=0
//
// so scripts (make serve-smoke, make gate-smoke) can assert on it.
// Rejected requests (429 backpressure or admission control) are
// retried up to -retries times, honoring the server's Retry-After
// header when present (else exponential backoff). A request still
// 429ing after its retries counts as shed, and a 504 (deadline
// exceeded server-side) counts as expired; both are errors unless
// -tolerate-shed is set — the flag for load runs that *intend* to trip
// admission control.
//
// Transport failures (connection refused/reset — a backend dying
// mid-run) are likewise retried with backoff; a request that exhausts
// its retries counts as failed rather than aborting the run, so a
// chaos test can kill a backend and still get a full RESULT line.
// failed > 0 exits nonzero unless -tolerate-fail is set. conn_err
// counts every transport-level error observed (including ones a retry
// later recovered), separately from HTTP-status failures.
//
// -wire binary switches the request/response encoding to the
// application/x-t2f frames of internal/wire (bodies pre-encoded once
// per sample and replayed through a per-worker bytes.Reader, -lane u8
// for the 1-byte-per-neuron input lane); -preds writes per-sample
// predictions for cross-format bit-identity diffs.
//
// -stream switches to streaming sessions over POST /v1/stream: the -n
// frames split into -c contiguous ranges, each driven through one
// long-lived session in lockstep, with per-frame inter-event latency
// feeding the same p50/p99 report. Sessions resume from the first
// unacked frame after retry/drain events and disconnects; RESULT gains
// frames=, sessions=, and stream_retries= (appended at the end, so
// existing greps keep working). -walk generates the frames with a
// seeded random walk over the dataset samples — the same seed produces
// the same frame sequence in one-shot and stream mode, making the two
// preds files diffable for bit-identity.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "server base URL")
	model := flag.String("model", "", "target model name (empty = the server's default via /v1/infer)")
	clientID := flag.String("client-id", "", "X-Client-ID header value for per-client rate limiting (empty = none)")
	ds := flag.String("dataset", "mnist", "synthetic dataset to replay: mnist|cifar10|cifar100")
	n := flag.Int("n", 200, "total requests")
	c := flag.Int("c", 8, "concurrent clients")
	seed := flag.Uint64("seed", 99, "dataset generator seed")
	samples := flag.Int("samples", 64, "distinct samples to cycle through")
	timeoutMs := flag.Int("timeout-ms", 0, "per-request server-side deadline (0 = none)")
	mode := flag.String("mode", "", "per-request serving mode sent to the server: latency|throughput (empty = server default)")
	retries := flag.Int("retries", 8, "max retries on 429 rejections")
	tolerateShed := flag.Bool("tolerate-shed", false, "count exhausted 429s and server-side deadline misses as shed/expired instead of errors")
	tolerateFail := flag.Bool("tolerate-fail", false, "exit zero even when some requests exhausted their transport-error retries (failed > 0)")
	faults := flag.Bool("faults", false, "request per-sample fault injection (sends the sample index)")
	warmup := flag.Duration("warmup", 60*time.Second, "how long to wait for the server to report healthy")
	wireFmt := flag.String("wire", "json", "request wire format: json|binary (binary = application/x-t2f frames)")
	lane := flag.String("lane", "f32", "binary input lane: f32|u8 (with -wire binary)")
	predsFile := flag.String("preds", "", "write per-sample predictions (\"index pred\" lines) to this file, for cross-format bit-identity diffs")
	streamMode := flag.Bool("stream", false, "streaming mode: open -c frame sessions over POST /v1/stream instead of one-shot requests")
	walk := flag.Bool("walk", false, "generate the -n frames with the seeded Markov random-walk generator (perturbed dataset samples with regime jumps) instead of cycling samples verbatim")
	walkStep := flag.Float64("walk-step", 0.02, "per-frame max pixel perturbation of the random walk (with -walk)")
	walkJump := flag.Float64("walk-jump", 0.05, "per-frame probability the walk jumps to a fresh base sample (with -walk)")
	timeline := flag.Bool("timeline", false, "ask the server for the per-frame argmax timeline (with -stream)")
	flag.Parse()

	binary := false
	switch *wireFmt {
	case "json":
	case "binary":
		binary = true
	default:
		fmt.Fprintf(os.Stderr, "snnload: unknown wire format %q (want json or binary)\n", *wireFmt)
		os.Exit(1)
	}
	wireLane := wire.LaneF32
	switch *lane {
	case "f32":
	case "u8":
		wireLane = wire.LaneU8
	default:
		fmt.Fprintf(os.Stderr, "snnload: unknown lane %q (want f32 or u8)\n", *lane)
		os.Exit(1)
	}

	switch *mode {
	case "", serve.ModeLatency, serve.ModeThroughput:
	default:
		fmt.Fprintf(os.Stderr, "snnload: unknown mode %q (want %s or %s)\n", *mode, serve.ModeLatency, serve.ModeThroughput)
		os.Exit(1)
	}
	if err := waitHealthy(*addr, *warmup); err != nil {
		fmt.Fprintf(os.Stderr, "snnload: %v\n", err)
		os.Exit(1)
	}
	inferURL := *addr + "/v1/infer"
	if *model != "" {
		inferURL = *addr + "/v1/models/" + *model + "/infer"
	}

	cfg := dataset.Config{Train: *samples, Test: 1, Seed: *seed}
	var eval *dataset.Dataset
	switch *ds {
	case "mnist":
		eval, _ = dataset.MNISTLike(cfg)
	case "cifar10":
		eval, _ = dataset.CIFAR10Like(cfg)
	case "cifar100":
		eval, _ = dataset.CIFAR100Like(cfg)
	default:
		fmt.Fprintf(os.Stderr, "snnload: unknown dataset %q\n", *ds)
		os.Exit(1)
	}
	sampleLen := 1
	for _, d := range eval.SampleShape() {
		sampleLen *= d
	}

	// Frame schedule: with -walk every request index gets its own input
	// — a seeded random walk over the dataset samples (small per-frame
	// perturbations, occasional regime jumps to a fresh base), labeled
	// by the walk's current base — so streamed and one-shot runs with
	// the same seed see bit-identical frame sequences. Without -walk,
	// request i replays sample i % samples, as ever.
	var walkInputs [][]float64
	var walkLabels []int
	if *walk {
		bases := make([][]float64, *samples)
		for i := range bases {
			bases[i] = eval.X.Data[i*sampleLen : (i+1)*sampleLen]
		}
		wk := stream.NewWalk(bases, *seed, *walkStep, *walkJump)
		walkInputs = make([][]float64, *n)
		walkLabels = make([]int, *n)
		for i := range walkInputs {
			in, base := wk.Next()
			walkInputs[i] = in
			walkLabels[i] = eval.Labels[base]
		}
	}
	nBodies := *samples
	if *walk {
		nBodies = *n
	}

	// Pre-encode every request body once: the load loop measures the
	// server, not the encoder (either format's).
	contentType := "application/json"
	if binary {
		contentType = wire.ContentType
	}
	lbls := make([]int, nBodies)
	bodies := make([][]byte, nBodies)
	for i := 0; i < nBodies; i++ {
		var input []float64
		if *walk {
			input = walkInputs[i]
			lbls[i] = walkLabels[i]
		} else {
			input = eval.X.Data[i*sampleLen : (i+1)*sampleLen]
			lbls[i] = eval.Labels[i]
		}
		if *streamMode {
			continue // sessions encode frames themselves
		}
		if binary {
			h := wire.Request{
				Lane:      wireLane,
				Sample:    -1,
				Label:     lbls[i],
				TimeoutMs: *timeoutMs,
				Mode:      wireMode(*mode),
			}
			if *faults {
				h.Sample = i
			}
			bodies[i] = wire.AppendRequest(nil, h, input)
			continue
		}
		req := serve.InferRequest{
			Input:     input,
			Label:     &lbls[i],
			TimeoutMs: *timeoutMs,
			Mode:      *mode,
		}
		if *faults {
			idx := i
			req.Sample = &idx
		}
		b, err := json.Marshal(req)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snnload: %v\n", err)
			os.Exit(1)
		}
		bodies[i] = b
	}

	var (
		okCt, errCt, rejectCt, correctCt atomic.Int64
		failedCt, connErrCt              atomic.Int64
		shedCt, expiredCt, retryAfterCt  atomic.Int64
		earlyExitCt, eventsSavedCt       atomic.Int64
		mu                               sync.Mutex
		lats                             []time.Duration
	)
	// The default transport keeps only 2 idle connections per host —
	// at -c 12 the surplus workers would re-dial every request and the
	// run would measure connection setup, not the server.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * *c,
		MaxIdleConnsPerHost: 2 * *c,
		IdleConnTimeout:     90 * time.Second,
		DisableCompression:  true,
	}}
	// preds[i] is the first prediction observed for body slot i (a
	// sample index, or a frame index with -walk; predictions are
	// deterministic, so concurrent stores agree); -3 = never queried.
	preds := make([]atomic.Int32, nBodies)
	for i := range preds {
		preds[i].Store(-3)
	}

	var streamRetryCt atomic.Int64
	sessions := 0
	start := time.Now()
	if *streamMode {
		streamURL := *addr + "/v1/stream"
		if *model != "" {
			streamURL = *addr + "/v1/models/" + *model + "/stream"
		}
		if *timeline {
			streamURL += "?timeline=1"
		}
		// The frame schedule: index i maps to body slot i % nBodies
		// (identity with -walk), which is also its preds slot — so a
		// streamed -walk run and a one-shot -walk run with the same
		// seed produce diffable preds files.
		inputs := make([][]float64, *n)
		labels := make([]int, *n)
		predIdx := make([]int, *n)
		for i := range inputs {
			si := i % nBodies
			predIdx[i] = si
			labels[i] = lbls[si]
			if *walk {
				inputs[i] = walkInputs[si]
			} else {
				inputs[i] = eval.X.Data[si*sampleLen : (si+1)*sampleLen]
			}
		}
		ct := &streamCounters{
			ok: &okCt, errs: &errCt, failed: &failedCt, correct: &correctCt,
			connErr: &connErrCt, streamRetries: &streamRetryCt,
			mu: &mu, lats: &lats, preds: preds, predIdx: predIdx,
		}
		sessions = runStream(client, streamURL, *clientID, binary, wireLane, *retries, *c, inputs, labels, ct)
	} else {
		next := make(chan int, *n)
		for i := 0; i < *n; i++ {
			next <- i
		}
		close(next)
		var wg sync.WaitGroup
		for w := 0; w < *c; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// One poster per worker: the body reader and response scratch
				// are reused across every request and retry this worker sends.
				p := &poster{client: client, url: inferURL, clientID: *clientID, contentType: contentType, binary: binary}
				for i := range next {
					si := i % nBodies
					t0 := time.Now()
					resp, m, err := p.post(bodies[si], *retries)
					rejectCt.Add(int64(m.rejected))
					retryAfterCt.Add(int64(m.retryAfterSeen))
					connErrCt.Add(int64(m.connErrs))
					switch {
					case err == nil:
						okCt.Add(1)
						if resp.Pred == lbls[si] {
							correctCt.Add(1)
						}
						if resp.EarlyExit {
							earlyExitCt.Add(1)
						}
						eventsSavedCt.Add(int64(resp.EventsSaved))
						preds[si].Store(int32(resp.Pred))
						mu.Lock()
						lats = append(lats, time.Since(t0))
						mu.Unlock()
					case m.exhaustedConn:
						// The connection died and stayed dead through the
						// retries: a counted outcome, not a run abort.
						failedCt.Add(1)
					case m.exhausted429 && *tolerateShed:
						shedCt.Add(1)
					case m.status == http.StatusGatewayTimeout && *tolerateShed:
						expiredCt.Add(1)
					default:
						errCt.Add(1)
					}
				}
			}()
		}
		wg.Wait()
	}
	wall := time.Since(start)

	if *predsFile != "" {
		if err := writePreds(*predsFile, preds); err != nil {
			fmt.Fprintf(os.Stderr, "snnload: %v\n", err)
			os.Exit(1)
		}
	}

	ok, errs, rejected := okCt.Load(), errCt.Load(), rejectCt.Load()
	failed, shed, expired := failedCt.Load(), shedCt.Load(), expiredCt.Load()
	acc := 0.0
	if ok > 0 {
		acc = float64(correctCt.Load()) / float64(ok)
	}
	throughput := float64(ok) / wall.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	// Nearest-rank percentile (rank ⌈p·n⌉), matching the server's
	// /metrics definition so the two reports are comparable.
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		rank := int(math.Ceil(p * float64(len(lats))))
		if rank < 1 {
			rank = 1
		}
		if rank > len(lats) {
			rank = len(lats)
		}
		return float64(lats[rank-1]) / float64(time.Millisecond)
	}

	fmt.Printf("snnload: %d ok, %d errors, %d failed, %d rejections retried, %d shed, %d expired over %s\n",
		ok, errs, failed, rejected, shed, expired, wall.Round(time.Millisecond))
	fmt.Printf("  throughput %.1f samples/s, latency p50 %.1fms p90 %.1fms p99 %.1fms, accuracy %.3f\n",
		throughput, pct(0.50), pct(0.90), pct(0.99), acc)
	if snap, err := fetchMetrics(client, *addr, *model); err == nil {
		fmt.Printf("  server: mean batch %.2f, completed %d, rejected %d, spikes/sample %.0f, parallel chunks %d, early exit %d (events saved %d), latency path %d\n",
			snap.MeanBatchSize, snap.Completed, snap.Rejected, snap.SpikesPerSample, snap.ParallelChunks,
			snap.EarlyExitTotal, snap.EventsSaved, snap.LatencyPathTotal)
	}
	// New fields append at the end: gate_smoke.sh and serve_smoke.sh grep
	// existing key=value pairs out of this line. err= counts HTTP-status
	// failures; conn_err= counts transport-level errors (refused/reset)
	// across all attempts, including ones a retry later recovered.
	frames := int64(0)
	if *streamMode {
		frames = int64(*n)
	}
	fmt.Printf("RESULT ok=%d err=%d failed=%d rejected=%d shed=%d expired=%d retry_after=%d wall_s=%.3f throughput=%.1f p50_ms=%.1f p99_ms=%.1f acc=%.3f early_exit=%d events_saved=%d conn_err=%d frames=%d sessions=%d stream_retries=%d\n",
		ok, errs, failed, rejected, shed, expired, retryAfterCt.Load(), wall.Seconds(), throughput, pct(0.50), pct(0.99), acc,
		earlyExitCt.Load(), eventsSavedCt.Load(), connErrCt.Load(), frames, sessions, streamRetryCt.Load())
	if errs > 0 {
		os.Exit(1)
	}
	if failed > 0 && !*tolerateFail {
		os.Exit(1)
	}
	if ok == 0 && !(*tolerateShed && shed+expired > 0) {
		os.Exit(1)
	}
}

// waitHealthy polls /readyz until the server answers 200 or the window
// elapses — so scripts can start snnserve and snnload back to back and
// the load run never starts against a replica still warming up. A 404
// (server predating the liveness/readiness split) falls back to
// /healthz.
func waitHealthy(addr string, window time.Duration) error {
	deadline := time.Now().Add(window)
	path := "/readyz"
	for {
		resp, err := http.Get(addr + path)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			if resp.StatusCode == http.StatusNotFound && path == "/readyz" {
				path = "/healthz"
				continue
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready within %s", addr, window)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// wireMode maps a serving-mode string onto its binary frame byte.
func wireMode(mode string) uint8 {
	switch mode {
	case serve.ModeLatency:
		return wire.ModeLatency
	case serve.ModeThroughput:
		return wire.ModeThroughput
	}
	return wire.ModeDefault
}

// writePreds dumps per-sample predictions as "index pred" lines, so two
// runs in different wire formats can be diffed for bit-identity.
func writePreds(path string, preds []atomic.Int32) error {
	var b bytes.Buffer
	for i := range preds {
		fmt.Fprintf(&b, "%d %d\n", i, preds[i].Load())
	}
	return os.WriteFile(path, b.Bytes(), 0o644)
}

// postMeta describes how one logical request went beyond its decoded
// response: how many 429s it absorbed, whether any carried Retry-After,
// whether retries ran out, how many transport-level errors it saw, and
// the final HTTP status.
type postMeta struct {
	rejected       int
	retryAfterSeen int
	connErrs       int
	exhausted429   bool
	exhaustedConn  bool
	status         int
}

// poster sends one worker's inference requests. The body reader and the
// binary response scratch live for the worker's whole run: every
// attempt Resets the same bytes.Reader over the pre-encoded body
// instead of allocating a fresh one.
type poster struct {
	client      *http.Client
	url         string
	clientID    string
	contentType string
	binary      bool

	rd   bytes.Reader
	rbuf [wire.RespLen]byte
}

// post sends one inference request, retrying 429 responses — waiting
// out the server's Retry-After when present, else backing off
// exponentially from 2ms. Transport errors (connection refused or
// reset: the server died, restarted, or was momentarily unreachable)
// retry on the same schedule; exhausting them marks the request
// exhaustedConn so the caller counts it as failed instead of tearing
// the run down.
func (p *poster) post(body []byte, retries int) (serve.InferResponse, postMeta, error) {
	var out serve.InferResponse
	var meta postMeta
	backoff := 2 * time.Millisecond
	for attempt := 0; ; attempt++ {
		p.rd.Reset(body)
		req, err := http.NewRequest(http.MethodPost, p.url, &p.rd)
		if err != nil {
			return out, meta, err
		}
		req.Header.Set("Content-Type", p.contentType)
		if p.clientID != "" {
			req.Header.Set("X-Client-ID", p.clientID)
		}
		resp, err := p.client.Do(req)
		if err != nil {
			meta.connErrs++
			if attempt >= retries {
				meta.exhaustedConn = true
				return out, meta, fmt.Errorf("still unreachable after %d retries: %w", retries, err)
			}
			time.Sleep(backoff)
			backoff *= 2
			continue
		}
		meta.status = resp.StatusCode
		if resp.StatusCode == http.StatusTooManyRequests {
			wait, honored := retryDelay(resp.Header.Get("Retry-After"), backoff)
			if honored {
				meta.retryAfterSeen++
			}
			resp.Body.Close()
			meta.rejected++
			if attempt >= retries {
				meta.exhausted429 = true
				return out, meta, fmt.Errorf("still rejected (429) after %d retries", retries)
			}
			time.Sleep(wait)
			backoff *= 2
			continue
		}
		if resp.StatusCode != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&e)
			resp.Body.Close()
			return out, meta, fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
		}
		if p.binary {
			_, err := io.ReadFull(resp.Body, p.rbuf[:])
			resp.Body.Close()
			if err != nil {
				return out, meta, fmt.Errorf("reading binary response: %w", err)
			}
			wr, err := wire.DecodeResponse(p.rbuf[:])
			if err != nil {
				return out, meta, err
			}
			out = serve.InferResponse{
				Pred:         wr.Pred,
				LatencySteps: wr.LatencySteps,
				TotalSpikes:  int(wr.TotalSpikes),
				WallMs:       float64(wr.WallUs) / 1000,
				EarlyExit:    wr.EarlyExit,
				EventsSaved:  int(wr.EventsSaved),
			}
			return out, meta, nil
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		return out, meta, err
	}
}

// fetchMetrics reads the server's /metrics. Multi-model servers nest
// per-model snapshots; model selects one (the default model when
// empty), falling back to the flat single-server document.
func fetchMetrics(client *http.Client, addr, model string) (serve.Snapshot, error) {
	var snap serve.Snapshot
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return snap, err
	}
	var reg serve.RegistrySnapshot
	if err := json.Unmarshal(buf.Bytes(), &reg); err == nil && len(reg.Models) > 0 {
		name := model
		if name == "" {
			name = reg.DefaultModel
		}
		if ms, ok := reg.Models[name]; ok {
			return ms.Snapshot, nil
		}
		return snap, fmt.Errorf("model %q not in /metrics", name)
	}
	return snap, json.Unmarshal(buf.Bytes(), &snap)
}
