// Command snnload is a deterministic load generator for cmd/snnserve:
// it regenerates a synthetic evaluation set (same generator the server
// and experiments use, so sample i is always the same image), replays
// it over POST /v1/infer from -c concurrent clients, and reports
// throughput, wall-clock latency percentiles, and accuracy.
//
//	snnload -addr http://127.0.0.1:8080 -dataset mnist -n 500 -c 8
//
// The final line is machine-readable:
//
//	RESULT ok=500 err=0 rejected=0 wall_s=1.23 throughput=406.5 p50_ms=18.2 p99_ms=44.0 acc=0.96
//
// so scripts (make serve-smoke) can assert on it. Rejected requests
// (429 backpressure) are retried with exponential backoff up to
// -retries times; other failures count as errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "server base URL")
	ds := flag.String("dataset", "mnist", "synthetic dataset to replay: mnist|cifar10|cifar100")
	n := flag.Int("n", 200, "total requests")
	c := flag.Int("c", 8, "concurrent clients")
	seed := flag.Uint64("seed", 99, "dataset generator seed")
	samples := flag.Int("samples", 64, "distinct samples to cycle through")
	timeoutMs := flag.Int("timeout-ms", 0, "per-request server-side deadline (0 = none)")
	retries := flag.Int("retries", 8, "max retries on 429 backpressure")
	faults := flag.Bool("faults", false, "request per-sample fault injection (sends the sample index)")
	warmup := flag.Duration("warmup", 60*time.Second, "how long to wait for the server to report healthy")
	flag.Parse()

	if err := waitHealthy(*addr, *warmup); err != nil {
		fmt.Fprintf(os.Stderr, "snnload: %v\n", err)
		os.Exit(1)
	}

	cfg := dataset.Config{Train: *samples, Test: 1, Seed: *seed}
	var eval *dataset.Dataset
	switch *ds {
	case "mnist":
		eval, _ = dataset.MNISTLike(cfg)
	case "cifar10":
		eval, _ = dataset.CIFAR10Like(cfg)
	case "cifar100":
		eval, _ = dataset.CIFAR100Like(cfg)
	default:
		fmt.Fprintf(os.Stderr, "snnload: unknown dataset %q\n", *ds)
		os.Exit(1)
	}
	sampleLen := 1
	for _, d := range eval.SampleShape() {
		sampleLen *= d
	}

	// Pre-encode every request body once: the load loop measures the
	// server, not the JSON encoder.
	bodies := make([][]byte, *samples)
	for i := 0; i < *samples; i++ {
		req := serve.InferRequest{
			Input:     eval.X.Data[i*sampleLen : (i+1)*sampleLen],
			Label:     &eval.Labels[i],
			TimeoutMs: *timeoutMs,
		}
		if *faults {
			idx := i
			req.Sample = &idx
		}
		b, err := json.Marshal(req)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snnload: %v\n", err)
			os.Exit(1)
		}
		bodies[i] = b
	}

	var (
		okCt, errCt, rejectCt, correctCt atomic.Int64
		mu                               sync.Mutex
		lats                             []time.Duration
	)
	client := &http.Client{}
	next := make(chan int, *n)
	for i := 0; i < *n; i++ {
		next <- i
	}
	close(next)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				si := i % *samples
				t0 := time.Now()
				resp, retried, err := postWithRetry(client, *addr+"/v1/infer", bodies[si], *retries)
				rejectCt.Add(int64(retried))
				if err != nil {
					errCt.Add(1)
					continue
				}
				okCt.Add(1)
				if resp.Pred == eval.Labels[si] {
					correctCt.Add(1)
				}
				mu.Lock()
				lats = append(lats, time.Since(t0))
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	ok, errs, rejected := okCt.Load(), errCt.Load(), rejectCt.Load()
	acc := 0.0
	if ok > 0 {
		acc = float64(correctCt.Load()) / float64(ok)
	}
	throughput := float64(ok) / wall.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	// Nearest-rank percentile (rank ⌈p·n⌉), matching the server's
	// /metrics definition so the two reports are comparable.
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		rank := int(math.Ceil(p * float64(len(lats))))
		if rank < 1 {
			rank = 1
		}
		if rank > len(lats) {
			rank = len(lats)
		}
		return float64(lats[rank-1]) / float64(time.Millisecond)
	}

	fmt.Printf("snnload: %d ok, %d errors, %d backpressure retries over %s\n", ok, errs, rejected, wall.Round(time.Millisecond))
	fmt.Printf("  throughput %.1f samples/s, latency p50 %.1fms p90 %.1fms p99 %.1fms, accuracy %.3f\n",
		throughput, pct(0.50), pct(0.90), pct(0.99), acc)
	if snap, err := fetchMetrics(client, *addr); err == nil {
		fmt.Printf("  server: mean batch %.2f, completed %d, rejected %d, spikes/sample %.0f, parallel chunks %d\n",
			snap.MeanBatchSize, snap.Completed, snap.Rejected, snap.SpikesPerSample, snap.ParallelChunks)
	}
	fmt.Printf("RESULT ok=%d err=%d rejected=%d wall_s=%.3f throughput=%.1f p50_ms=%.1f p99_ms=%.1f acc=%.3f\n",
		ok, errs, rejected, wall.Seconds(), throughput, pct(0.50), pct(0.99), acc)
	if errs > 0 || ok == 0 {
		os.Exit(1)
	}
}

// waitHealthy polls /healthz until the server answers 200 or the window
// elapses — so scripts can start snnserve and snnload back to back.
func waitHealthy(addr string, window time.Duration) error {
	deadline := time.Now().Add(window)
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy within %s", addr, window)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// postWithRetry sends one inference request, retrying 429 responses
// with exponential backoff. It returns the decoded response and how
// many backpressure rejections it absorbed.
func postWithRetry(client *http.Client, url string, body []byte, retries int) (serve.InferResponse, int, error) {
	var out serve.InferResponse
	backoff := 2 * time.Millisecond
	rejected := 0
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return out, rejected, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			resp.Body.Close()
			rejected++
			if attempt >= retries {
				return out, rejected, fmt.Errorf("still overloaded after %d retries", retries)
			}
			time.Sleep(backoff)
			backoff *= 2
			continue
		}
		if resp.StatusCode != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&e)
			resp.Body.Close()
			return out, rejected, fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		return out, rejected, err
	}
}

func fetchMetrics(client *http.Client, addr string) (serve.Snapshot, error) {
	var snap serve.Snapshot
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	return snap, json.NewDecoder(resp.Body).Decode(&snap)
}
