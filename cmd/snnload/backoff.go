package main

import (
	"strconv"
	"strings"
	"time"
)

// retryDelay decides how long to wait before retrying a 429. The
// server's Retry-After header wins whenever it parses as a non-negative
// integer second count — including 0, which means "retry immediately"
// (the shed window has already passed). A missing, malformed, or
// negative value falls back to the caller's exponential backoff and is
// not counted as honored.
func retryDelay(retryAfter string, backoff time.Duration) (wait time.Duration, honored bool) {
	ra, err := strconv.Atoi(strings.TrimSpace(retryAfter))
	if err != nil || ra < 0 {
		return backoff, false
	}
	return time.Duration(ra) * time.Second, true
}
