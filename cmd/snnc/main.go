// Command snnc is the "SNN compiler" of the toolchain: it trains the
// source DNN for a dataset (or loads cached weights), converts it to a
// spiking network, optionally runs the gradient-based kernel
// optimization, and writes a self-contained .t2f model file that
// cmd/snninfer executes.
//
// Usage:
//
//	snnc -dataset cifar10 -scale small -go -o cifar10.t2f
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	dataset := flag.String("dataset", "mnist", "dataset: mnist|cifar10|cifar100")
	scaleFlag := flag.String("scale", "small", "scale: tiny|small|full")
	cacheDir := flag.String("cache", "models", "DNN weight cache directory")
	useGO := flag.Bool("go", true, "apply gradient-based kernel optimization")
	out := flag.String("o", "", "output model path (default <dataset>.t2f)")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	flag.Parse()

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	p, err := experiments.ParamsFor(*dataset, scale)
	if err != nil {
		fatal(err)
	}
	var log io.Writer = os.Stderr
	if *quiet {
		log = nil
	}
	s, err := experiments.Prepare(p, *cacheDir, log)
	if err != nil {
		fatal(err)
	}
	base, optimized, _, err := experiments.BuildModels(s)
	if err != nil {
		fatal(err)
	}
	model := base
	if *useGO {
		model = optimized
	}

	path := *out
	if path == "" {
		path = *dataset + ".t2f"
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := model.Save(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %s, %d stages, %d neurons, T=%d, GO=%v (DNN test acc %.1f%%)\n",
		path, model.Net.Name, len(model.Net.Stages), model.Net.NumNeurons(), model.T, *useGO, 100*s.DNNAcc)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snnc:", err)
	os.Exit(1)
}
