// Command snnc is the "SNN compiler" of the toolchain: it trains the
// source DNN for a dataset (or loads cached weights), converts it to a
// spiking network, optionally runs the gradient-based kernel
// optimization, and writes a self-contained .t2f model file that
// cmd/snninfer executes.
//
// Usage:
//
//	snnc -dataset cifar10 -scale small -go -o cifar10.t2f
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/snn"
	"repro/internal/tensor"
)

func main() {
	dataset := flag.String("dataset", "mnist", "dataset: mnist|cifar10|cifar100")
	scaleFlag := flag.String("scale", "small", "scale: tiny|small|full")
	cacheDir := flag.String("cache", "models", "DNN weight cache directory")
	useGO := flag.Bool("go", true, "apply gradient-based kernel optimization")
	out := flag.String("o", "", "output model path (default <dataset>.t2f)")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	micro := flag.Int("micro", 0, "skip training and emit a synthetic wire-bench model: N input pixels fanned into a single dense 10-class output stage with seeded random weights. Wide input + near-zero compute makes transport cost dominate, which is what the wire-protocol smoke and profile legs measure.")
	flag.Parse()

	if *micro > 0 {
		path := *out
		if path == "" {
			path = "micro.t2f"
		}
		if err := writeMicroModel(path, *micro); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: micro wire-bench model, %d inputs -> 10 classes, T=%d\n", path, *micro, microT)
		return
	}

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	p, err := experiments.ParamsFor(*dataset, scale)
	if err != nil {
		fatal(err)
	}
	var log io.Writer = os.Stderr
	if *quiet {
		log = nil
	}
	s, err := experiments.Prepare(p, *cacheDir, log)
	if err != nil {
		fatal(err)
	}
	base, optimized, _, err := experiments.BuildModels(s)
	if err != nil {
		fatal(err)
	}
	model := base
	if *useGO {
		model = optimized
	}

	path := *out
	if path == "" {
		path = *dataset + ".t2f"
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := model.Save(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %s, %d stages, %d neurons, T=%d, GO=%v (DNN test acc %.1f%%)\n",
		path, model.Net.Name, len(model.Net.Stages), model.Net.NumNeurons(), model.T, *useGO, 100*s.DNNAcc)
}

// microT is the fire window of -micro models: the MNIST-scale default,
// long enough for fine-grained TTFS encoding, short enough that a
// request's compute stays trivially small next to its transport cost.
const microT = 20

// writeMicroModel builds and saves the -micro network: one dense stage
// mapping inLen inputs straight onto 10 output potentials. Weights are
// deterministic (fixed-seed Xavier), so every build of the same size
// predicts identically — the wire smoke leg diffs predictions across
// transport formats against exactly this property.
func writeMicroModel(path string, inLen int) error {
	const classes = 10
	w := tensor.New(inLen, classes)
	rng := tensor.NewRNG(1)
	rng.XavierInit(w, inLen, classes)
	net := &snn.Net{
		Name:    fmt.Sprintf("micro-%d", inLen),
		InShape: []int{1, 1, inLen},
		InLen:   inLen,
		Stages: []snn.Stage{{
			Name:   "out",
			Kind:   snn.DenseStage,
			W:      w,
			B:      tensor.New(classes),
			InLen:  inLen,
			OutLen: classes,
			Output: true,
		}},
	}
	m, err := core.NewModel(net, microT, float64(microT)/4, 0)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snnc:", err)
	os.Exit(1)
}
