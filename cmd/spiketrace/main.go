// Command spiketrace runs one sample through a .t2f model (written by
// cmd/snnc) and dumps the spike activity as a GTKWave-compatible VCD
// waveform and/or a terminal raster — the hardware engineer's view of a
// TTFS inference.
//
// Usage:
//
//	spiketrace -model mnist.t2f -dataset mnist -sample 3 -vcd trace.vcd -raster
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/trace"
)

func main() {
	modelPath := flag.String("model", "", "path to a .t2f model (required)")
	ds := flag.String("dataset", "mnist", "sample source: mnist|cifar10|cifar100")
	sampleIdx := flag.Int("sample", 0, "sample index to trace")
	seed := flag.Uint64("seed", 99, "sample generator seed")
	ef := flag.Bool("ef", true, "use early firing")
	vcdPath := flag.String("vcd", "", "write a VCD waveform to this path")
	raster := flag.Bool("raster", true, "print per-layer spike rasters")
	maxWires := flag.Int("maxwires", 64, "VCD wires per layer (viewers choke on more)")
	flag.Parse()

	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "spiketrace: -model is required")
		os.Exit(2)
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		fatal(err)
	}
	model, err := core.LoadModel(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	cfg := dataset.Config{Train: *sampleIdx + 1, Test: 1, Seed: *seed}
	var set *dataset.Dataset
	switch *ds {
	case "mnist":
		set, _ = dataset.MNISTLike(cfg)
	case "cifar10":
		set, _ = dataset.CIFAR10Like(cfg)
	case "cifar100":
		set, _ = dataset.CIFAR100Like(cfg)
	default:
		fatal(fmt.Errorf("unknown dataset %q", *ds))
	}
	sample := set.Sample(*sampleIdx)
	if sample.Len() != model.Net.InLen {
		fatal(fmt.Errorf("model expects %d inputs, sample has %d", model.Net.InLen, sample.Len()))
	}

	fmt.Fprintf(os.Stderr, "input (label %d):\n%s", set.Labels[*sampleIdx], dataset.ASCII(sample))
	r := model.Infer(sample.Data, core.RunConfig{EarlyFire: *ef, CollectEvents: true})
	fmt.Printf("pred=%d latency=%d steps total spikes=%d\n", r.Pred, r.Latency, r.TotalSpikes)

	tr := trace.FromResult(model, r)
	if *raster {
		for _, g := range tr.Groups() {
			fmt.Print(tr.Raster(g, 24, 100))
		}
	}
	if *vcdPath != "" {
		out, err := os.Create(*vcdPath)
		if err != nil {
			fatal(err)
		}
		if err := tr.WriteVCD(out, "1us", *maxWires); err != nil {
			out.Close()
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (open with GTKWave)\n", *vcdPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spiketrace:", err)
	os.Exit(1)
}
