// Command snngate fronts a fleet of snnserve replicas with a
// fault-tolerant routing gateway (internal/gateway):
//
//	snngate -addr :8090 -backend http://127.0.0.1:8081 -backend http://127.0.0.1:8082
//
// Each backend is probed on /readyz; backends that fail probes or real
// traffic are evicted, re-probed with exponential backoff, and
// readmitted through a half-open trial stage. Inference requests route
// to the least-loaded healthy backend (with consistent-hash affinity
// for clients that send -client-header), retry on another backend when
// one dies mid-request, and hedge a second attempt when the first runs
// past the fleet's rolling p95. POST /v1/models/{name}/swap rolls a
// zero-downtime model hot-swap across the fleet one backend at a time.
//
// Endpoints: POST /v1/infer, POST /v1/models/{name}/infer,
// POST /v1/models/{name}/swap, GET /v1/models, GET /healthz,
// GET /readyz, GET /metrics (fleet accounting + per-backend health).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/gateway"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	var backends []string
	flag.Func("backend", "backend base URL, e.g. http://127.0.0.1:8081 (repeatable)", func(v string) error {
		backends = append(backends, v)
		return nil
	})
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "active health probe period per backend")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "timeout for one health probe")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive failures (probe or traffic) that evict a backend")
	attempts := flag.Int("attempts", 3, "max distinct backends tried per request (primary + retries/hedges)")
	hedgeDelay := flag.Duration("hedge-delay", 25*time.Millisecond, "hedge trigger delay until the fleet p95 is known")
	noHedge := flag.Bool("no-hedge", false, "disable latency hedging (failure retries remain)")
	poolWait := flag.Duration("pool-wait", time.Second, "max time a request waits for a live backend before 503")
	clientHeader := flag.String("client-header", "X-Client-ID", "request header carrying client identity for backend affinity")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof debug endpoints on this address (e.g. 127.0.0.1:6061; empty = disabled)")
	flag.Parse()
	startPprof("snngate", *pprofAddr)

	g, err := gateway.New(gateway.Options{
		Backends:      backends,
		ClientHeader:  *clientHeader,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		FailThreshold: *failThreshold,
		MaxAttempts:   *attempts,
		DisableHedge:  *noHedge,
		HedgeDelay:    *hedgeDelay,
		PoolWait:      *poolWait,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "snngate: %v\n", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: g.Handler()}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "snngate: draining...")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		g.BeginDrain()          // cancel open streaming relays first:
		//                         Shutdown waits for active handlers, and
		//                         a relay only returns when its session
		//                         ends (clients get retry events)
		err := hs.Shutdown(ctx) // finish in-flight proxied requests
		g.Close()
		done <- err
	}()

	fmt.Fprintf(os.Stderr, "snngate: routing %d backend(s) on %s (probe %s, threshold %d, attempts %d, hedge %v)\n",
		len(backends), *addr, *probeInterval, *failThreshold, *attempts, !*noHedge)
	for _, b := range backends {
		fmt.Fprintf(os.Stderr, "snngate:   %s\n", b)
	}
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "snngate: %v\n", err)
		os.Exit(1)
	}
	if err := <-done; err != nil {
		fmt.Fprintf(os.Stderr, "snngate: shutdown: %v\n", err)
		os.Exit(1)
	}
	s := g.Snapshot()
	fmt.Fprintf(os.Stderr, "snngate: done (%d accepted = %d completed + %d failed + %d shed; %d hedges fired, %d won, %d retries, %d evictions)\n",
		s.Accepted, s.Completed, s.Failed, s.Shed, s.HedgesFired, s.HedgesWon, s.Retries, s.EvictionsTotal)
}
