// Command datasetgen renders samples of the synthetic datasets to
// netpbm image files (and optionally the terminal) so the procedural
// generators can be inspected with any image viewer.
//
// Usage:
//
//	datasetgen -dataset cifar10 -n 20 -o samples/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
)

func main() {
	ds := flag.String("dataset", "mnist", "dataset: mnist|cifar10|cifar100")
	n := flag.Int("n", 10, "number of samples to render")
	seed := flag.Uint64("seed", 1, "generator seed")
	outDir := flag.String("o", "samples", "output directory")
	ascii := flag.Bool("ascii", false, "also print terminal previews")
	flag.Parse()

	cfg := dataset.Config{Train: *n, Test: 1, Seed: *seed}
	var set *dataset.Dataset
	switch *ds {
	case "mnist":
		set, _ = dataset.MNISTLike(cfg)
	case "cifar10":
		set, _ = dataset.CIFAR10Like(cfg)
	case "cifar100":
		set, _ = dataset.CIFAR100Like(cfg)
	default:
		fatal(fmt.Errorf("unknown dataset %q", *ds))
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	color := set.SampleShape()[0] == 3
	for i := 0; i < set.N(); i++ {
		sample := set.Sample(i)
		ext := "pgm"
		if color {
			ext = "ppm"
		}
		path := filepath.Join(*outDir, fmt.Sprintf("%s_%03d_class%02d.%s", *ds, i, set.Labels[i], ext))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if color {
			err = dataset.WritePPM(f, sample)
		} else {
			err = dataset.WritePGM(f, sample)
		}
		f.Close()
		if err != nil {
			fatal(err)
		}
		if *ascii {
			fmt.Printf("%s (class %d):\n%s\n", path, set.Labels[i], dataset.ASCII(sample))
		}
	}
	fmt.Printf("wrote %d %s samples to %s/\n", set.N(), *ds, *outDir)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datasetgen:", err)
	os.Exit(1)
}
