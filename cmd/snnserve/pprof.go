package main

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the DefaultServeMux
	"os"
)

// startPprof serves the net/http/pprof endpoints on their own listener
// when addr is non-empty. A separate listener keeps the profiling
// surface off the serving port (and off by default): the serving mux
// never routes /debug, so enabling pprof cannot change API behavior.
func startPprof(prog, addr string) {
	if addr == "" {
		return
	}
	go func() {
		fmt.Fprintf(os.Stderr, "%s: pprof on http://%s/debug/pprof/\n", prog, addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "%s: pprof: %v\n", prog, err)
		}
	}()
}
