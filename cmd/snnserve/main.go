// Command snnserve exposes spiking models over HTTP with server-side
// micro-batching (internal/serve): requests queue up to -batch samples
// or -wait, whichever comes first, and execute as one batched inference
// — on a single core the batched TTFS engine amortizes scatter address
// generation across the batch, which is where the throughput win over
// per-request inference comes from.
//
// One process hosts any number of named models (serve.Registry), each
// with its own queue, workers, and metrics. -model is repeatable and
// takes name=source[:scheme[:steps]] where source is a .t2f file from
// cmd/snnc or dataset/scale for an on-the-spot build (DNN weights are
// cached under -cache, so repeat startups are fast):
//
//	snnserve -model ttfs=mnist/tiny -model rate=mnist/tiny:rate:100
//	snnserve -model prod=cifar10.t2f -model canary=cifar10.t2f
//
// The first model is the default for the back-compat /v1/infer route.
// A bare path or the -dataset flags still work and name the single
// model "default":
//
//	snnserve -model cifar10.t2f -addr :8080
//	snnserve -dataset mnist -scale tiny -cache models -addr :8080
//	snnserve -dataset mnist -scale tiny -scheme rate -steps 100
//
// -engine event serves ttfs models on the event-driven engine with
// early exit: single-sample requests bypass the batch queue (the
// "latency" serving mode, pick it per request with "mode":"latency" or
// server-wide with -mode latency) and stop integrating the output
// window as soon as the winner is provably undominated. Predictions are
// identical to the clocked engine's; latency_steps may shrink and the
// response carries early_exit/events_saved.
//
// -engine quant serves ttfs models on the fixed-point int8 engine:
// weights are quantized once into int8 SoA scatter plans and
// integration runs on int32 accumulators, trading ≤1% fixture argmax
// disagreement for a ~2.7× single-sample speedup over the clocked
// sweep. /metrics reports the active kernel in the "engine" field.
//
// Admission control sits in front of every model: -rate/-burst run a
// per-client token bucket (keyed by -client-header, falling back to
// remote address), and deadline-headroom shedding (disable with
// -no-shed) rejects requests whose deadline is below the target
// model's rolling p99 batch latency with 429 + Retry-After before they
// occupy a queue slot. -max-timeout clamps client deadlines so the
// shedder cannot be dodged with huge or absent timeout_ms values.
//
// Endpoints: POST /v1/models/{name}/infer, POST /v1/infer,
// GET /v1/models, GET /healthz, GET /metrics (per-model snapshots
// nested in one document). SIGINT/SIGTERM drain every model before
// exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/serve"
)

// modelSpec is one parsed -model flag.
type modelSpec struct {
	name   string
	source string // .t2f path or dataset/scale
	scheme string // ttfs|event|rate|phase|burst
	steps  int    // simulation horizon for non-ttfs schemes
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	var modelFlags []string
	flag.Func("model", "model to serve: name=source[:scheme[:steps]] with source a .t2f file or dataset/scale (repeatable); a bare path serves that .t2f as \"default\"", func(v string) error {
		modelFlags = append(modelFlags, v)
		return nil
	})
	ds := flag.String("dataset", "mnist", "build the default model for this synthetic dataset when no -model is given: mnist|cifar10|cifar100")
	scale := flag.String("scale", "tiny", "dataset scale: tiny|small|full")
	cache := flag.String("cache", "models", "weight cache directory for dataset builds")
	scheme := flag.String("scheme", "ttfs", "default serving engine: ttfs|event|rate|phase|burst")
	steps := flag.Int("steps", 100, "default simulation horizon for non-ttfs schemes")
	engine := flag.String("engine", "clock", "execution engine for ttfs models: clock (batched reference), event (event-driven with early exit — the latency-mode engine), or quant (fixed-point int8 — the per-core throughput engine)")
	mode := flag.String("mode", "", "default serving mode: latency (direct single-sample path)|throughput (micro-batching queue); empty routes automatically per request")
	ef := flag.Bool("ef", true, "early firing (ttfs engine)")
	useGO := flag.Bool("go", false, "apply gradient-based kernel optimization at startup (slower start, better accuracy; dataset builds only)")

	batch := flag.Int("batch", 16, "max samples per dispatched batch (per model)")
	wait := flag.Duration("wait", 2*time.Millisecond, "max time the first queued request waits for a batch to fill")
	queue := flag.Int("queue", 0, "request queue bound per model (0 = 8x batch); overflow returns 429")
	workers := flag.Int("workers", 0, "batch executor goroutines per model (0 = GOMAXPROCS; forced to 1 when -parallel engages)")
	parallel := flag.Int("parallel", 0, "data-parallel workers per batch inference (0 = GOMAXPROCS, 1 = sequential)")
	sharePool := flag.Bool("share-pool", false, "share one data-parallel pool across all models instead of one pool per model")
	timeout := flag.Duration("timeout", 0, "default per-request deadline (0 = none)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on client-supplied deadlines; 0 lets clients pick any deadline (or none) and defeats deadline shedding")

	rate := flag.Float64("rate", 0, "per-client admission rate in requests/s (0 = unlimited)")
	burst := flag.Int("burst", 0, "per-client burst allowance (0 = rate rounded up)")
	clientHeader := flag.String("client-header", "X-Client-ID", "request header identifying a client for rate limiting (fallback: remote address)")
	noShed := flag.Bool("no-shed", false, "disable deadline-headroom shedding (429 when a request's deadline is below the model's rolling p99 batch latency)")

	fSeed := flag.Uint64("fault-seed", 1, "fault injection seed (applies to every model)")
	fDrop := flag.Float64("fault-drop", 0, "per-spike drop probability")
	fJitter := flag.Int("fault-jitter", 0, "max TTFS spike jitter in steps")
	fStuck := flag.Float64("fault-stuck", 0, "stuck-silent neuron fraction")
	fNoise := flag.Float64("fault-noise", 0, "threshold noise amplitude")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof debug endpoints on this address (e.g. 127.0.0.1:6060; empty = disabled)")
	flag.Parse()
	startPprof("snnserve", *pprofAddr)

	specs, err := parseModelSpecs(modelFlags, *ds, *scale, *scheme, *steps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snnserve: %v\n", err)
		os.Exit(1)
	}
	switch *engine {
	case "clock":
	case "event", "quant":
		// -engine event/quant upgrades every ttfs model to that engine;
		// explicitly event/quant/rate/phase/burst specs are untouched.
		for i := range specs {
			if specs[i].scheme == "ttfs" {
				specs[i].scheme = *engine
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "snnserve: unknown engine %q (want clock, event, or quant)\n", *engine)
		os.Exit(1)
	}
	switch *mode {
	case "", serve.ModeLatency, serve.ModeThroughput:
	default:
		fmt.Fprintf(os.Stderr, "snnserve: unknown mode %q (want %s or %s)\n", *mode, serve.ModeLatency, serve.ModeThroughput)
		os.Exit(1)
	}

	// Data-parallel batch execution: a pool shards each micro-batch
	// across cores inside one engine call, so each scheduler needs only
	// one dispatcher goroutine — more would oversubscribe the cores the
	// pool already owns.
	pw := *parallel
	if pw <= 0 {
		pw = runtime.GOMAXPROCS(0)
	}
	var shared *core.Pool
	if pw > 1 && *sharePool {
		shared = core.NewPool(core.ParallelOpts{Workers: pw})
		defer shared.Close()
	}

	// BuildEngine enables POST /v1/models/{name}/swap: a swap request
	// names a source (and optionally scheme/steps) and gets an engine
	// built with this process's fault/cache/EF configuration. Swapped-in
	// engines join the shared data-parallel pool when -share-pool is on;
	// with per-model pools the replacement runs sequentially (per-model
	// pools live exactly as long as process startup engines, and a
	// swapped engine has no pool owner to close one).
	reg := serve.NewRegistry(serve.RegistryOptions{
		RatePerSec:      *rate,
		Burst:           *burst,
		ClientHeader:    *clientHeader,
		DisableShedding: *noShed,
		BuildEngine: func(model string, req serve.SwapRequest) (serve.Engine, error) {
			spec := modelSpec{name: model, source: req.Source, scheme: req.Scheme, steps: req.Steps}
			if spec.scheme == "" {
				spec.scheme = "ttfs"
			}
			switch spec.scheme {
			case "ttfs", "event", "quant", "rate", "phase", "burst":
			default:
				return nil, fmt.Errorf("unknown scheme %q", spec.scheme)
			}
			if spec.steps <= 0 {
				spec.steps = *steps
			}
			eng, _, err := buildEngine(engineConfig{
				spec: spec, cache: *cache, ef: *ef, useGO: *useGO,
				fSeed: *fSeed, fDrop: *fDrop, fJitter: *fJitter, fStuck: *fStuck, fNoise: *fNoise,
			})
			if err != nil {
				return nil, err
			}
			if shared != nil {
				switch e := eng.(type) {
				case *serve.TTFSEngine:
					e.Pool = shared
				case *serve.SchemeEngine:
					e.Pool = shared
				}
			}
			return eng, nil
		},
	})
	opt := serve.Options{
		MaxBatch:       *batch,
		MaxWait:        *wait,
		QueueSize:      *queue,
		Workers:        *workers,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		DefaultMode:    *mode,
	}
	var descs []string
	var warmups []func()
	for _, spec := range specs {
		eng, desc, err := buildEngine(engineConfig{
			spec: spec, cache: *cache, ef: *ef, useGO: *useGO,
			fSeed: *fSeed, fDrop: *fDrop, fJitter: *fJitter, fStuck: *fStuck, fNoise: *fNoise,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "snnserve: model %s: %v\n", spec.name, err)
			os.Exit(1)
		}
		pool := shared
		if pw > 1 && pool == nil {
			pool = core.NewPool(core.ParallelOpts{Workers: pw})
			defer pool.Close()
		}
		mopt := opt
		if pool != nil {
			switch e := eng.(type) {
			case *serve.TTFSEngine:
				e.Pool = pool
			case *serve.SchemeEngine:
				e.Pool = pool
			}
			if mopt.Workers == 0 {
				mopt.Workers = 1
			}
		}
		srv, err := reg.Add(spec.name, eng, mopt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snnserve: model %s: %v\n", spec.name, err)
			os.Exit(1)
		}

		// Defer warmup until after the listener is up: the first
		// inference builds the model's scatter plan and sizes a pooled
		// scratch, which would otherwise land on the first user
		// request's latency. /readyz answers 503 until every model (and
		// pool arena) is warm, so a gateway or orchestrator never routes
		// to a replica still paying that cost — while /healthz is live
		// the moment the listener binds.
		name, e, p := spec.name, eng, pool
		warmups = append(warmups, func() {
			warm := time.Now()
			srv.Warm()
			if te, ok := e.(*serve.TTFSEngine); ok && p != nil {
				p.Warm(te.Model, [][]float64{make([]float64, e.InLen())}, te.Run)
			}
			fmt.Fprintf(os.Stderr, "snnserve: model %s (%s) warmed in %s\n",
				name, desc, time.Since(warm).Round(time.Millisecond))
		})
		descs = append(descs, fmt.Sprintf("%s=%s", spec.name, desc))
	}
	go func() {
		for _, warm := range warmups {
			warm()
		}
		reg.SetReady(true)
		fmt.Fprintln(os.Stderr, "snnserve: ready")
	}()

	hs := &http.Server{Addr: *addr, Handler: reg.Handler()}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "snnserve: draining...")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		reg.BeginDrain()        // unblock open streaming sessions first:
		//                         Shutdown waits for active handlers, and a
		//                         stream handler only returns once its
		//                         server signals drain
		err := hs.Shutdown(ctx) // stop accepting, finish in-flight HTTP
		reg.Close()             // drain every model's batch queue
		done <- err
	}()

	fmt.Fprintf(os.Stderr, "snnserve: serving %d model(s) on %s (batch<=%d, wait %s, workers %d, parallel %d, rate %s/client, shed %v)\n",
		len(specs), *addr, opt.MaxBatch, opt.MaxWait, opt.Workers, pw, rateDesc(*rate), !*noShed)
	for _, d := range descs {
		fmt.Fprintf(os.Stderr, "snnserve:   %s\n", d)
	}
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "snnserve: %v\n", err)
		os.Exit(1)
	}
	if err := <-done; err != nil {
		fmt.Fprintf(os.Stderr, "snnserve: shutdown: %v\n", err)
		os.Exit(1)
	}
	snap := reg.Snapshot()
	for _, name := range reg.Names() {
		ms := snap.Models[name]
		fmt.Fprintf(os.Stderr, "snnserve: %s done (%d completed, %d rejected, %d shed, mean batch %.2f, parallel chunks %d)\n",
			name, ms.Completed, ms.Rejected, ms.DeadlineShed, ms.MeanBatchSize, ms.ParallelChunks)
	}
	if snap.RateLimited > 0 {
		fmt.Fprintf(os.Stderr, "snnserve: %d request(s) rate-limited\n", snap.RateLimited)
	}
}

func rateDesc(rate float64) string {
	if rate <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%.3g req/s", rate)
}

// parseModelSpecs turns the -model flags into model specs, falling back
// to a single "default" model built from the -dataset/-scheme flags
// when none were given.
func parseModelSpecs(raw []string, ds, scale, scheme string, steps int) ([]modelSpec, error) {
	if len(raw) == 0 {
		return []modelSpec{{name: "default", source: ds + "/" + scale, scheme: scheme, steps: steps}}, nil
	}
	specs := make([]modelSpec, 0, len(raw))
	for _, v := range raw {
		spec, err := parseModelSpec(v, scheme, steps)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// parseModelSpec parses name=source[:scheme[:steps]]; a value without
// '=' is the legacy single-model form, a bare .t2f path named
// "default".
func parseModelSpec(v, defScheme string, defSteps int) (modelSpec, error) {
	spec := modelSpec{name: "default", scheme: "ttfs", steps: defSteps}
	src := v
	if name, rest, ok := strings.Cut(v, "="); ok {
		if name == "" {
			return spec, fmt.Errorf("empty model name in %q", v)
		}
		spec.name = name
		spec.scheme = defScheme
		src = rest
	}
	parts := strings.Split(src, ":")
	spec.source = parts[0]
	if spec.source == "" {
		return spec, fmt.Errorf("empty model source in %q", v)
	}
	if len(parts) > 1 && parts[1] != "" {
		spec.scheme = parts[1]
	}
	if len(parts) > 2 {
		n, err := strconv.Atoi(parts[2])
		if err != nil || n <= 0 {
			return spec, fmt.Errorf("bad steps in %q", v)
		}
		spec.steps = n
	}
	if len(parts) > 3 {
		return spec, fmt.Errorf("too many fields in %q (want name=source[:scheme[:steps]])", v)
	}
	switch spec.scheme {
	case "ttfs", "event", "quant", "rate", "phase", "burst":
	default:
		return spec, fmt.Errorf("unknown scheme %q in %q", spec.scheme, v)
	}
	return spec, nil
}

type engineConfig struct {
	spec                  modelSpec
	cache                 string
	ef, useGO             bool
	fSeed                 uint64
	fDrop, fNoise, fStuck float64
	fJitter               int
}

// buildEngine assembles one model's serving engine: model (loaded or
// built), scheme, run configuration, and optional fault injector.
func buildEngine(c engineConfig) (serve.Engine, string, error) {
	var inj *fault.Injector
	if c.fDrop > 0 || c.fJitter > 0 || c.fStuck > 0 || c.fNoise > 0 {
		var err error
		inj, err = fault.New(fault.Config{
			Seed: c.fSeed, Drop: c.fDrop, Jitter: c.fJitter,
			StuckSilent: c.fStuck, ThresholdNoise: c.fNoise,
		})
		if err != nil {
			return nil, "", err
		}
	}

	if strings.HasSuffix(c.spec.source, ".t2f") {
		f, err := os.Open(c.spec.source)
		if err != nil {
			return nil, "", err
		}
		m, err := core.LoadModel(f)
		f.Close()
		if err != nil {
			return nil, "", err
		}
		switch c.spec.scheme {
		case "ttfs":
		case "event":
			run := core.RunConfig{EarlyFire: c.ef, EarlyExit: true}
			return &serve.EventEngine{Model: m, Run: run, Faults: inj},
				fmt.Sprintf("t2fsnn-event %s (T=%d, early exit)", c.spec.source, m.T), nil
		case "quant":
			run := core.RunConfig{EarlyFire: c.ef}
			return &serve.QuantEngine{Model: m, Run: run, Faults: inj},
				fmt.Sprintf("t2fsnn-quant %s (T=%d, int8)", c.spec.source, m.T), nil
		default:
			sch, err := schemeFor(c.spec.scheme)
			if err != nil {
				return nil, "", err
			}
			return &serve.SchemeEngine{Net: m.Net, Scheme: sch, Steps: c.spec.steps, Faults: inj},
				fmt.Sprintf("%s over %s (%d steps)", sch.Name(), c.spec.source, c.spec.steps), nil
		}
		run := core.RunConfig{EarlyFire: c.ef}
		return &serve.TTFSEngine{Model: m, Run: run, Faults: inj},
			fmt.Sprintf("t2fsnn %s (T=%d)", c.spec.source, m.T), nil
	}

	ds, scaleName, ok := strings.Cut(c.spec.source, "/")
	if !ok {
		return nil, "", fmt.Errorf("source %q is neither a .t2f path nor dataset/scale", c.spec.source)
	}
	sc, err := experiments.ParseScale(scaleName)
	if err != nil {
		return nil, "", err
	}
	p, err := experiments.ParamsFor(ds, sc)
	if err != nil {
		return nil, "", err
	}
	s, err := experiments.Prepare(p, c.cache, os.Stderr)
	if err != nil {
		return nil, "", err
	}

	if c.spec.scheme != "ttfs" && c.spec.scheme != "event" && c.spec.scheme != "quant" {
		sch, err := schemeFor(c.spec.scheme)
		if err != nil {
			return nil, "", err
		}
		return &serve.SchemeEngine{Net: s.Conv.Net, Scheme: sch, Steps: c.spec.steps, Faults: inj},
			fmt.Sprintf("%s over %s (%d steps)", sch.Name(), c.spec.source, c.spec.steps), nil
	}

	var m *core.Model
	if c.useGO {
		_, m, _, err = experiments.BuildModels(s)
	} else {
		m, err = core.NewModel(s.Conv.Net, p.T, p.TauInit, p.TdInit)
	}
	if err != nil {
		return nil, "", err
	}
	run := core.RunConfig{EarlyFire: c.ef, EFStart: p.EFStart()}
	name := "T2FSNN"
	if c.useGO {
		name += "+GO"
	}
	if c.ef {
		name += "+EF"
	}
	if c.spec.scheme == "event" {
		run.EarlyExit = true
		return &serve.EventEngine{Model: m, Run: run, Faults: inj},
			fmt.Sprintf("%s-event over %s (T=%d, early exit, DNN acc %.3f)", name, c.spec.source, m.T, s.DNNAcc), nil
	}
	if c.spec.scheme == "quant" {
		return &serve.QuantEngine{Model: m, Run: run, Faults: inj},
			fmt.Sprintf("%s-quant over %s (T=%d, int8, DNN acc %.3f)", name, c.spec.source, m.T, s.DNNAcc), nil
	}
	return &serve.TTFSEngine{Model: m, Run: run, Faults: inj},
		fmt.Sprintf("%s over %s (T=%d, DNN acc %.3f)", name, c.spec.source, m.T, s.DNNAcc), nil
}

func schemeFor(name string) (coding.Scheme, error) {
	switch name {
	case "rate":
		return coding.Rate{}, nil
	case "phase":
		return coding.Phase{}, nil
	case "burst":
		return coding.Burst{}, nil
	}
	return nil, fmt.Errorf("unknown scheme %q", name)
}
