// Command snnserve exposes a spiking model over HTTP with server-side
// micro-batching (internal/serve): requests queue up to -batch samples
// or -wait, whichever comes first, and execute as one batched inference
// — on a single core the batched TTFS engine amortizes scatter address
// generation across the batch, which is where the throughput win over
// per-request inference comes from.
//
// The model comes from either a .t2f file written by cmd/snnc:
//
//	snnserve -model cifar10.t2f -addr :8080
//
// or is built on the spot from a synthetic dataset (DNN weights are
// cached under -cache, so repeat startups are fast):
//
//	snnserve -dataset mnist -scale tiny -cache models -addr :8080
//
// Baseline codings are served through the same API:
//
//	snnserve -dataset mnist -scale tiny -scheme rate -steps 100
//
// Endpoints: POST /v1/infer, GET /healthz, GET /metrics. SIGINT/SIGTERM
// drain in-flight batches before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "", "serve a .t2f model written by cmd/snnc (overrides -dataset)")
	ds := flag.String("dataset", "mnist", "build a model for this synthetic dataset: mnist|cifar10|cifar100")
	scale := flag.String("scale", "tiny", "dataset scale: tiny|small|full")
	cache := flag.String("cache", "models", "weight cache directory for the -dataset build path")
	scheme := flag.String("scheme", "ttfs", "serving engine: ttfs|rate|phase|burst")
	steps := flag.Int("steps", 100, "simulation horizon for non-ttfs schemes")
	ef := flag.Bool("ef", true, "early firing (ttfs engine)")
	useGO := flag.Bool("go", false, "apply gradient-based kernel optimization at startup (slower start, better accuracy)")

	batch := flag.Int("batch", 16, "max samples per dispatched batch")
	wait := flag.Duration("wait", 2*time.Millisecond, "max time the first queued request waits for a batch to fill")
	queue := flag.Int("queue", 0, "request queue bound (0 = 8x batch); overflow returns 429")
	workers := flag.Int("workers", 0, "batch executor goroutines (0 = GOMAXPROCS; forced to 1 when -parallel engages)")
	parallel := flag.Int("parallel", 0, "data-parallel workers per batch inference (0 = GOMAXPROCS, 1 = sequential)")
	timeout := flag.Duration("timeout", 0, "default per-request deadline (0 = none)")

	fSeed := flag.Uint64("fault-seed", 1, "fault injection seed")
	fDrop := flag.Float64("fault-drop", 0, "per-spike drop probability")
	fJitter := flag.Int("fault-jitter", 0, "max TTFS spike jitter in steps")
	fStuck := flag.Float64("fault-stuck", 0, "stuck-silent neuron fraction")
	fNoise := flag.Float64("fault-noise", 0, "threshold noise amplitude")
	flag.Parse()

	eng, desc, err := buildEngine(engineConfig{
		modelPath: *modelPath, dataset: *ds, scale: *scale, cache: *cache,
		scheme: *scheme, steps: *steps, ef: *ef, useGO: *useGO,
		fSeed: *fSeed, fDrop: *fDrop, fJitter: *fJitter, fStuck: *fStuck, fNoise: *fNoise,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "snnserve: %v\n", err)
		os.Exit(1)
	}

	// Data-parallel batch execution: the pool shards each micro-batch
	// across cores inside one engine call, so the scheduler needs only
	// one dispatcher goroutine — more would oversubscribe the cores the
	// pool already owns.
	pw := *parallel
	if pw <= 0 {
		pw = runtime.GOMAXPROCS(0)
	}
	var pool *core.Pool
	if pw > 1 {
		pool = core.NewPool(core.ParallelOpts{Workers: pw})
		defer pool.Close()
		switch e := eng.(type) {
		case *serve.TTFSEngine:
			e.Pool = pool
		case *serve.SchemeEngine:
			e.Pool = pool
		}
		if *workers == 0 {
			*workers = 1
		}
	}

	// Warm the engine before accepting traffic: the first inference
	// builds the model's scatter plan and sizes a pooled scratch, which
	// would otherwise land on the first user request's latency. With a
	// pool, warm every worker's arena too.
	warm := time.Now()
	eng.InferBatch([][]float64{make([]float64, eng.InLen())}, []int{-1})
	if te, ok := eng.(*serve.TTFSEngine); ok && pool != nil {
		pool.Warm(te.Model, [][]float64{make([]float64, eng.InLen())}, te.Run)
	}
	fmt.Fprintf(os.Stderr, "snnserve: engine warmed in %s\n", time.Since(warm).Round(time.Millisecond))

	srv := serve.New(eng, serve.Options{
		MaxBatch:       *batch,
		MaxWait:        *wait,
		QueueSize:      *queue,
		Workers:        *workers,
		DefaultTimeout: *timeout,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "snnserve: draining...")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		err := hs.Shutdown(ctx) // stop accepting, finish in-flight HTTP
		srv.Close()             // drain the batch queue
		done <- err
	}()

	opt := srv.Options()
	fmt.Fprintf(os.Stderr, "snnserve: serving %s on %s (batch<=%d, wait %s, queue %d, workers %d, parallel %d)\n",
		desc, *addr, opt.MaxBatch, opt.MaxWait, opt.QueueSize, opt.Workers, pool.Workers())
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "snnserve: %v\n", err)
		os.Exit(1)
	}
	if err := <-done; err != nil {
		fmt.Fprintf(os.Stderr, "snnserve: shutdown: %v\n", err)
		os.Exit(1)
	}
	snap := srv.Metrics().Snapshot()
	fmt.Fprintf(os.Stderr, "snnserve: done (%d completed, %d rejected, mean batch %.2f, parallel chunks %d)\n",
		snap.Completed, snap.Rejected, snap.MeanBatchSize, snap.ParallelChunks)
}

type engineConfig struct {
	modelPath, dataset, scale, cache, scheme string
	steps                                    int
	ef, useGO                                bool
	fSeed                                    uint64
	fDrop, fNoise, fStuck                    float64
	fJitter                                  int
}

// buildEngine assembles the serving engine: model (loaded or built),
// scheme, run configuration, and optional fault injector.
func buildEngine(c engineConfig) (serve.Engine, string, error) {
	var inj *fault.Injector
	if c.fDrop > 0 || c.fJitter > 0 || c.fStuck > 0 || c.fNoise > 0 {
		var err error
		inj, err = fault.New(fault.Config{
			Seed: c.fSeed, Drop: c.fDrop, Jitter: c.fJitter,
			StuckSilent: c.fStuck, ThresholdNoise: c.fNoise,
		})
		if err != nil {
			return nil, "", err
		}
	}

	if c.modelPath != "" {
		f, err := os.Open(c.modelPath)
		if err != nil {
			return nil, "", err
		}
		m, err := core.LoadModel(f)
		f.Close()
		if err != nil {
			return nil, "", err
		}
		run := core.RunConfig{EarlyFire: c.ef}
		return &serve.TTFSEngine{Model: m, Run: run, Faults: inj},
			fmt.Sprintf("t2fsnn %s (T=%d)", c.modelPath, m.T), nil
	}

	sc, err := experiments.ParseScale(c.scale)
	if err != nil {
		return nil, "", err
	}
	p, err := experiments.ParamsFor(c.dataset, sc)
	if err != nil {
		return nil, "", err
	}
	s, err := experiments.Prepare(p, c.cache, os.Stderr)
	if err != nil {
		return nil, "", err
	}

	if c.scheme != "ttfs" {
		var sch coding.Scheme
		switch c.scheme {
		case "rate":
			sch = coding.Rate{}
		case "phase":
			sch = coding.Phase{}
		case "burst":
			sch = coding.Burst{}
		default:
			return nil, "", fmt.Errorf("unknown scheme %q", c.scheme)
		}
		return &serve.SchemeEngine{Net: s.Conv.Net, Scheme: sch, Steps: c.steps, Faults: inj},
			fmt.Sprintf("%s over %s/%s (%d steps)", sch.Name(), c.dataset, c.scale, c.steps), nil
	}

	var m *core.Model
	if c.useGO {
		_, m, _, err = experiments.BuildModels(s)
	} else {
		m, err = core.NewModel(s.Conv.Net, p.T, p.TauInit, p.TdInit)
	}
	if err != nil {
		return nil, "", err
	}
	run := core.RunConfig{EarlyFire: c.ef, EFStart: p.EFStart()}
	name := "T2FSNN"
	if c.useGO {
		name += "+GO"
	}
	if c.ef {
		name += "+EF"
	}
	return &serve.TTFSEngine{Model: m, Run: run, Faults: inj},
		fmt.Sprintf("%s over %s/%s (T=%d, DNN acc %.3f)", name, c.dataset, c.scale, m.T, s.DNNAcc), nil
}
