// Command snninfer executes a .t2f spiking model written by cmd/snnc on
// freshly generated evaluation data, reporting accuracy, latency, and
// spike statistics — the deployment half of the toolchain.
//
// Usage:
//
//	snninfer -model cifar10.t2f -dataset cifar10 -n 50 -ef
//	snninfer -model cifar10.t2f -dataset cifar10 -engine quant
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/tensor"
)

func main() {
	modelPath := flag.String("model", "", "path to a .t2f model (required)")
	ds := flag.String("dataset", "mnist", "evaluation data: mnist|cifar10|cifar100")
	n := flag.Int("n", 50, "number of evaluation samples")
	seed := flag.Uint64("seed", 99, "evaluation data seed (distinct from training)")
	ef := flag.Bool("ef", true, "use early firing")
	engine := flag.String("engine", "clock", "inference engine: clock (float64 reference), event (event-driven), or quant (fixed-point int8)")
	analytic := flag.Bool("analytic", false, "use the analytic baseline engine (disables -ef)")
	flag.Parse()

	var engineKind core.EngineKind
	switch *engine {
	case "clock":
		engineKind = core.EngineClocked
	case "event":
		engineKind = core.EngineEvent
	case "quant":
		engineKind = core.EngineQuant
	default:
		fmt.Fprintf(os.Stderr, "snninfer: unknown engine %q (want clock, event, or quant)\n", *engine)
		os.Exit(2)
	}

	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "snninfer: -model is required")
		os.Exit(2)
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		fatal(err)
	}
	model, err := core.LoadModel(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	cfg := dataset.Config{Train: *n, Test: 1, Seed: *seed}
	var eval *dataset.Dataset
	switch *ds {
	case "mnist":
		eval, _ = dataset.MNISTLike(cfg)
	case "cifar10":
		eval, _ = dataset.CIFAR10Like(cfg)
	case "cifar100":
		eval, _ = dataset.CIFAR100Like(cfg)
	default:
		fatal(fmt.Errorf("unknown dataset %q", *ds))
	}
	sampleLen := 1
	for _, d := range eval.SampleShape() {
		sampleLen *= d
	}
	if sampleLen != model.Net.InLen {
		fatal(fmt.Errorf("model expects %d inputs, %s samples have %d", model.Net.InLen, *ds, sampleLen))
	}

	if *analytic {
		hit, spikes := 0, 0
		for i := 0; i < eval.N(); i++ {
			r := model.InferAnalytic(eval.Sample(i).Data)
			if r.Pred == eval.Labels[i] {
				hit++
			}
			spikes += r.TotalSpikes
		}
		fmt.Printf("analytic engine: acc=%.1f%% latency=%d avg spikes=%.0f over %d samples\n",
			100*float64(hit)/float64(eval.N()), len(model.Net.Stages)*model.T,
			float64(spikes)/float64(eval.N()), eval.N())
		return
	}

	flat := tensor.FromSlice(eval.X.Data, eval.N(), sampleLen)
	res, err := core.Evaluate(model, flat, eval.Labels, core.EvalOptions{
		Run: core.RunConfig{EarlyFire: *ef}, Engine: engineKind})
	if err != nil {
		fatal(err)
	}
	mode := "baseline"
	if *ef {
		mode = "early-firing"
	}
	if *engine != "clock" {
		mode += "/" + *engine
	}
	fmt.Printf("%s pipeline: acc=%.1f%% latency=%d steps avg spikes=%.0f over %d samples\n",
		mode, 100*res.Accuracy, res.Latency, res.AvgSpikes, res.N)
	for b, s := range res.SpikesPerStage {
		name := "Input"
		if b > 0 {
			name = model.Net.Stages[b-1].Name
		}
		fmt.Printf("  %-10s %8.0f spikes/sample\n", name, s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snninfer:", err)
	os.Exit(1)
}
