// Command t2fsnn reproduces the paper's experiments from the terminal.
//
// Usage:
//
//	t2fsnn [-scale tiny|small|full] [-cache DIR] [-quiet] <command>
//
// Commands:
//
//	train     train and cache the DNNs for every dataset
//	table1    ablation study (GO / EF)                      — paper Table I
//	table2    coding-scheme comparison with energy          — paper Table II
//	table3    computational cost analysis                   — paper Table III
//	fig4      kernel-optimization loss trajectories         — paper Fig. 4
//	fig5      per-layer spike-time distributions            — paper Fig. 5
//	fig6      accuracy-versus-time inference curves         — paper Fig. 6
//	all       everything above, in order
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "small", "experiment scale: tiny|small|full")
	cacheFlag := flag.String("cache", "models", "weight cache directory (empty to disable)")
	quietFlag := flag.Bool("quiet", false, "suppress progress logging")
	outFlag := flag.String("out", "", "also write each report to <out>/<experiment>.txt")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	var log io.Writer = os.Stderr
	if *quietFlag {
		log = nil
	}

	cmd := flag.Arg(0)
	run := func(name string) error {
		out, err := runOne(name, scale, *cacheFlag, log)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println(out)
		if *outFlag != "" {
			if err := os.MkdirAll(*outFlag, 0o755); err != nil {
				return fmt.Errorf("%s: creating output dir: %w", name, err)
			}
			path := filepath.Join(*outFlag, name+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				return fmt.Errorf("%s: writing report: %w", name, err)
			}
			if log != nil {
				fmt.Fprintf(log, "wrote %s\n", path)
			}
		}
		return nil
	}

	switch cmd {
	case "train":
		for _, ds := range []string{"mnist", "cifar10", "cifar100"} {
			p, err := experiments.ParamsFor(ds, scale)
			if err != nil {
				fatal(err)
			}
			s, err := experiments.Prepare(p, *cacheFlag, log)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s: DNN test accuracy %.2f%% (%d params)\n", ds, 100*s.DNNAcc, s.DNN.NumParams())
		}
	case "table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6", "ablation", "deploy":
		if err := run(cmd); err != nil {
			fatal(err)
		}
	case "all":
		for _, name := range []string{"table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6", "ablation", "deploy"} {
			if err := run(name); err != nil {
				fatal(err)
			}
		}
	default:
		usage()
		os.Exit(2)
	}
}

// runOne dispatches a single experiment and returns its report.
func runOne(name string, scale experiments.Scale, cache string, log io.Writer) (string, error) {
	switch name {
	case "table1":
		r, err := experiments.Table1(scale, cache, log)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	case "table2":
		r, err := experiments.Table2(scale, cache, log)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	case "table3":
		r, err := experiments.Table3(scale, cache, log)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	case "fig3":
		r, err := experiments.Fig3(scale, cache, log)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	case "fig4":
		r, err := experiments.Fig4(scale, cache, log)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	case "fig5":
		r, err := experiments.Fig5(scale, cache, log)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	case "fig6":
		r, err := experiments.Fig6(scale, cache, log)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	case "ablation":
		r, err := experiments.Ablation(scale, cache, log)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	case "deploy":
		r, err := experiments.Deploy(scale, cache, log)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	}
	return "", fmt.Errorf("unknown experiment %q", name)
}

func usage() {
	fmt.Fprintf(os.Stderr, `t2fsnn — reproduce "T2FSNN: Deep Spiking Neural Networks with
Time-to-first-spike Coding" (Park et al., DAC 2020)

usage: t2fsnn [-scale tiny|small|full] [-cache DIR] [-quiet] <command>

commands:
  train    train + cache the source DNNs
  table1   ablation study (GO / EF)
  table2   coding comparison with TrueNorth/SpiNNaker energy
  table3   computational cost analysis
  fig3     pipeline timing diagrams (baseline vs early firing)
  fig4     kernel-optimization loss trajectories
  fig5     spike-time distributions per layer
  fig6     inference curves for all coding schemes
  ablation design-choice sweeps (EF start, percentile, tau)
  deploy   fixed-point + core-mapping deployment study
  all      run everything
`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "t2fsnn:", err)
	os.Exit(1)
}
