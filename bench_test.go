package repro

// One benchmark per table and figure of the paper's evaluation section,
// plus ablation benches for the design choices called out in DESIGN.md.
// All run at the Tiny experiment scale; training cost is paid once per
// process through the experiment setup cache and excluded from timings.

import (
	"fmt"
	"testing"

	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/quant"
)

// warm prepares (and caches) the setups an experiment needs so the
// timed region measures the experiment itself, not DNN training.
func warm(b *testing.B, datasets ...string) {
	b.Helper()
	for _, ds := range datasets {
		p, err := experiments.ParamsFor(ds, experiments.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Prepare(p, "", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Ablation(b *testing.B) {
	warm(b, "cifar10", "cifar100")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(experiments.Tiny, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 8 {
			b.Fatalf("unexpected row count %d", len(res.Rows))
		}
	}
}

func BenchmarkTable2Comparison(b *testing.B) {
	warm(b, "mnist", "cifar10", "cifar100")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(experiments.Tiny, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		// surface the headline ratio as a metric: our TN energy vs rate
		for _, r := range res.Rows {
			if r.Dataset == "cifar10" && r.Scheme == "Our Method" {
				b.ReportMetric(r.EnergyTN, "energyTN(cifar10)")
			}
		}
	}
}

func BenchmarkTable3OpCount(b *testing.B) {
	warm(b, "cifar100")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(experiments.Tiny, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.Method == "T2FSNN" {
				b.ReportMetric(r.Add, "t2fsnnAddsM")
			}
		}
	}
}

func BenchmarkFig4KernelOptimization(b *testing.B) {
	warm(b, "cifar10")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(experiments.Tiny, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FinalTau["tau=2"], "tauFrom2")
	}
}

func BenchmarkFig5SpikeTimeDistribution(b *testing.B) {
	warm(b, "cifar10")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(experiments.Tiny, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Layers) == 0 {
			b.Fatal("no layers")
		}
	}
}

func BenchmarkFig6InferenceCurves(b *testing.B) {
	warm(b, "cifar10", "cifar100")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(experiments.Tiny, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Curves[0].FinalAccuracy["T2FSNN+GO+EF"], "accGOEF(cifar10)")
	}
}

// --- ablation benches (DESIGN.md §5) ---

// setupAndModels returns the cifar10-like setup with baseline/GO models.
func setupAndModels(b *testing.B) (*experiments.Setup, *core.Model, *core.Model) {
	b.Helper()
	p, err := experiments.ParamsFor("cifar10", experiments.Tiny)
	if err != nil {
		b.Fatal(err)
	}
	s, err := experiments.Prepare(p, "", nil)
	if err != nil {
		b.Fatal(err)
	}
	base, opt, _, err := experiments.BuildModels(s)
	if err != nil {
		b.Fatal(err)
	}
	return s, base, opt
}

// BenchmarkAblationEFStart sweeps the early-firing start time (the
// paper fixes it at T/2 "based on the experiments"; this regenerates
// that trade-off).
func BenchmarkAblationEFStart(b *testing.B) {
	s, base, _ := setupAndModels(b)
	for _, frac := range []struct {
		name string
		num  int
		den  int
	}{{"T4", 1, 4}, {"T2", 1, 2}, {"3T4", 3, 4}} {
		b.Run(frac.name, func(b *testing.B) {
			start := base.T * frac.num / frac.den
			for i := 0; i < b.N; i++ {
				ev, err := core.Evaluate(base, s.EvalX, s.EvalY, core.EvalOptions{
					Run: core.RunConfig{EarlyFire: true, EFStart: start}})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*ev.Accuracy, "acc%")
				b.ReportMetric(float64(ev.Latency), "latency")
			}
		})
	}
}

// BenchmarkEvaluateParallel sweeps core.Pool worker counts over full
// evaluation — the experiment-harness counterpart of the serving-side
// BenchmarkInferBatchParallel (on a single-core host the counts tie;
// results are bit-identical at any count, so only wall clock moves).
func BenchmarkEvaluateParallel(b *testing.B) {
	s, base, _ := setupAndModels(b)
	run := core.RunConfig{EarlyFire: true}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			pool := core.NewPool(core.ParallelOpts{Workers: workers})
			defer pool.Close()
			for i := 0; i < b.N; i++ {
				ev, err := core.Evaluate(base, s.EvalX, s.EvalY, core.EvalOptions{Run: run, Pool: pool})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*ev.Accuracy, "acc%")
			}
		})
	}
}

// BenchmarkAblationPipeline compares the baseline and early-firing
// pipelines on identical inputs.
func BenchmarkAblationPipeline(b *testing.B) {
	s, base, _ := setupAndModels(b)
	in := s.EvalX.Data[:base.Net.InLen]
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base.Infer(in, core.RunConfig{})
		}
	})
	b.Run("earlyfire", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base.Infer(in, core.RunConfig{EarlyFire: true})
		}
	})
}

// BenchmarkAblationKernelGO measures the cost of the gradient-based
// optimization pass itself.
func BenchmarkAblationKernelGO(b *testing.B) {
	s, _, _ := setupAndModels(b)
	zbar := s.Conv.Activations[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := kernel.Optimize(kernel.Kernel{Tau: 10, Td: 0, T: 40}, zbar,
			kernel.OptimizeConfig{BatchSize: 256, Epochs: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCodingStep measures per-step simulation cost of each
// baseline coding scheme on one sample.
func BenchmarkAblationCodingStep(b *testing.B) {
	s, _, _ := setupAndModels(b)
	in := s.EvalX.Data[:s.Conv.Net.InLen]
	for _, sch := range []coding.Scheme{coding.Rate{}, coding.Phase{}, coding.Burst{}} {
		b.Run(sch.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sch.Run(s.Conv.Net, in, coding.RunOpts{Steps: 50})
			}
		})
		b.Run(sch.Name()+"/scratch", func(b *testing.B) {
			sc := coding.NewScratch()
			opts := coding.RunOpts{Steps: 50, Scratch: sc}
			sch.Run(s.Conv.Net, in, opts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sch.Run(s.Conv.Net, in, opts)
			}
		})
	}
}

// BenchmarkAblationQuantBits sweeps fixed-point weight width and
// reports spiking accuracy per width (the deployment trade-off).
func BenchmarkAblationQuantBits(b *testing.B) {
	s, _, _ := setupAndModels(b)
	for _, bits := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("w%d", bits), func(b *testing.B) {
			qnet, _, err := quant.QuantizeNet(s.Conv.Net, bits)
			if err != nil {
				b.Fatal(err)
			}
			m, err := core.NewModel(qnet, s.Params.T, s.Params.TauInit, s.Params.TdInit)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				ev, err := core.Evaluate(m, s.EvalX, s.EvalY, core.EvalOptions{
					Run: core.RunConfig{EarlyFire: true}})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*ev.Accuracy, "acc%")
			}
		})
	}
}

// BenchmarkAblationHWMapping measures placement cost and reports the
// resulting core counts per fabric.
func BenchmarkAblationHWMapping(b *testing.B) {
	s, _, _ := setupAndModels(b)
	for _, fabric := range []hw.Fabric{hw.TrueNorth, hw.SpiNNaker} {
		b.Run(fabric.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := hw.Map(s.Conv.Net, fabric)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(m.TotalCores), "cores")
			}
		})
	}
}

// BenchmarkAblationRateEncoder compares the deterministic and Poisson
// input encoders for rate coding.
func BenchmarkAblationRateEncoder(b *testing.B) {
	s, _, _ := setupAndModels(b)
	in := s.EvalX.Data[:s.Conv.Net.InLen]
	b.Run("deterministic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coding.Rate{}.Run(s.Conv.Net, in, coding.RunOpts{Steps: 50})
		}
	})
	b.Run("poisson", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coding.Rate{Poisson: true, Seed: uint64(i)}.Run(s.Conv.Net, in, coding.RunOpts{Steps: 50})
		}
	})
}
